#include "net/packet.h"

#include "common/strings.h"

namespace nerpa::net {

std::optional<uint8_t> PacketReader::ReadU8() {
  auto v = ReadBits(8);
  if (!v) return std::nullopt;
  return static_cast<uint8_t>(*v);
}

std::optional<uint16_t> PacketReader::ReadU16() {
  auto v = ReadBits(16);
  if (!v) return std::nullopt;
  return static_cast<uint16_t>(*v);
}

std::optional<uint32_t> PacketReader::ReadU32() {
  auto v = ReadBits(32);
  if (!v) return std::nullopt;
  return static_cast<uint32_t>(*v);
}

std::optional<uint64_t> PacketReader::ReadBits(int bits) {
  uint64_t value = 0;
  for (int i = 0; i < bits; ++i) {
    if (offset_ >= data_.size()) return std::nullopt;
    int bit = (data_[offset_] >> (7 - bit_offset_)) & 1;
    value = (value << 1) | static_cast<unsigned>(bit);
    if (++bit_offset_ == 8) {
      bit_offset_ = 0;
      ++offset_;
    }
  }
  return value;
}

std::optional<Mac> PacketReader::ReadMac() {
  auto v = ReadBits(48);
  if (!v) return std::nullopt;
  return Mac(*v);
}

std::optional<Ipv4> PacketReader::ReadIpv4() {
  auto v = ReadU32();
  if (!v) return std::nullopt;
  return Ipv4(*v);
}

bool PacketReader::Skip(size_t bytes) {
  if (bit_offset_ != 0) return false;  // only byte-aligned skips
  if (offset_ + bytes > data_.size()) return false;
  offset_ += bytes;
  return true;
}

void PacketWriter::WriteU8(uint8_t v) { WriteBits(v, 8); }
void PacketWriter::WriteU16(uint16_t v) { WriteBits(v, 16); }
void PacketWriter::WriteU32(uint32_t v) { WriteBits(v, 32); }

void PacketWriter::WriteBits(uint64_t v, int bits) {
  for (int i = bits - 1; i >= 0; --i) {
    int bit = static_cast<int>((v >> i) & 1);
    pending_ = static_cast<uint8_t>((pending_ << 1) | bit);
    if (++pending_bits_ == 8) {
      data_.push_back(pending_);
      pending_ = 0;
      pending_bits_ = 0;
    }
  }
}

void PacketWriter::WriteMac(Mac mac) { WriteBits(mac.bits(), 48); }
void PacketWriter::WriteIpv4(Ipv4 ip) { WriteU32(ip.bits()); }

void PacketWriter::WriteBytes(const uint8_t* data, size_t size) {
  for (size_t i = 0; i < size; ++i) WriteU8(data[i]);
}

Packet PacketWriter::Finish() {
  if (pending_bits_ != 0) {
    pending_ = static_cast<uint8_t>(pending_ << (8 - pending_bits_));
    data_.push_back(pending_);
    pending_ = 0;
    pending_bits_ = 0;
  }
  return std::move(data_);
}

Packet MakeEthernetFrame(Mac dst, Mac src, uint16_t ether_type,
                         const std::vector<uint8_t>& payload,
                         std::optional<uint16_t> vlan) {
  PacketWriter w;
  w.WriteMac(dst);
  w.WriteMac(src);
  if (vlan) {
    w.WriteU16(static_cast<uint16_t>(EtherType::kVlan));
    w.WriteU16(static_cast<uint16_t>(*vlan & 0x0FFF));  // PCP/DEI zero
  }
  w.WriteU16(ether_type);
  w.WriteBytes(payload.data(), payload.size());
  return w.Finish();
}

std::string HexDump(const Packet& packet) {
  std::string out;
  for (size_t i = 0; i < packet.size(); ++i) {
    if (i > 0 && i % 2 == 0) out += ' ';
    out += StrFormat("%02x", packet[i]);
  }
  return out;
}

}  // namespace nerpa::net
