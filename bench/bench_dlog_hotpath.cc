// A2 — the dlog hot-path overhaul: interned values, cached row hashes,
// probe-free joins, and persistent transaction scratch state.
//
// Three workloads exercise exactly the costs the overhaul targets:
//
//   1. join-heavy commit stream — 32 keys re-pointed per commit against a
//      fanout-32 arrangement, so every commit probes and re-derives ~2,000
//      join rows.  Reported: commits/s, delta rows/s, arrangement probes/s
//      (from Engine::Stats).
//   2. commit latency vs relation size — the same single-key update
//      against databases of growing size; incrementality says the curve
//      should stay near-flat.
//   3. peak RSS with/without interning — a string-keyed join database
//      built in a fresh child process per mode (clean RSS), showing what
//      hash-consing saves when the same keys appear across relations and
//      derived rows.
//
// The "before" numbers are the pre-overhaul engine (seed of this PR)
// measured on the same machine with the identical workload at --scale=1;
// they are recorded here so BENCH_dlog_hotpath.json always carries the
// before/after pair the overhaul is judged by (target: >= 2x join-heavy
// commit throughput, lower peak RSS).
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "dlog/engine.h"

namespace nerpa {
namespace {

using bench::Banner;
using bench::BenchArgs;
using bench::JsonEmitter;
using bench::Table;
using dlog::Engine;
using dlog::Row;
using dlog::Value;

constexpr const char* kJoinProgram = R"(
input relation R(k: string, a: bigint)
input relation S(k: string, b: bigint)
output relation J(a: bigint, b: bigint)
J(a, b) :- R(k, a), S(k, b).
)";

// Pre-overhaul reference (seed engine, same machine, same workloads,
// --scale=1, Release -O2).  Meaningful to compare against only at the
// default scale.
constexpr double kBeforeJoinCommitsPerSec = 187;
constexpr double kBeforeJoinDeltaRowsPerSec = 376255;
constexpr double kBeforeLatencyUs[] = {19.0, 32.7, 70.3, 217.2};
constexpr int64_t kBeforeRssBytes = 507990016;  // string-join build, no pool

std::string KeyName(int k) { return StrFormat("key-%d", k); }

/// Child process: builds the string-keyed join database with interning on
/// or off and prints "rss_bytes out_rows".
int RunRssVariant(bool interning, const BenchArgs& args) {
  dlog::SetValueInterning(interning);
  auto program = dlog::Program::Parse(kJoinProgram);
  if (!program.ok()) return 1;
  Engine engine(*program);
  const int keys = args.Scaled(4096);
  const int fanout = 64;
  for (int k = 0; k < keys; ++k) {
    std::string key = StrFormat("lb-vip-key-%08d", k);
    (void)engine.Insert("R", Row{Value::String(key), Value::Int(k)});
    for (int f = 0; f < fanout; ++f) {
      (void)engine.Insert("S",
                          Row{Value::String(key), Value::Int(k * 1000 + f)});
    }
  }
  if (!engine.Commit().ok()) return 1;
  std::printf("%lld %zu\n", static_cast<long long>(CurrentRssBytes()),
              engine.Size("J"));
  return 0;
}

bool RunRssChild(const char* self, bool interning, const BenchArgs& args,
                 int64_t* rss, size_t* rows) {
  std::string command = std::string(self) +
                        (interning ? " rss-on" : " rss-off") + args.Forward();
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return false;
  char line[128] = {0};
  bool ok = fgets(line, sizeof line, pipe) != nullptr;
  int status = pclose(pipe);
  if (!ok || status != 0) return false;
  long long rss_value = 0;
  if (std::sscanf(line, "%lld %zu", &rss_value, rows) != 2) return false;
  *rss = rss_value;
  return true;
}

int Run(const char* self, const BenchArgs& args) {
  Banner("A2", "dlog hot path: interning, probe-free joins, txn reuse");

  JsonEmitter emitter("dlog_hotpath", args);

  // --- workload 1: join-heavy commit stream ---
  const int kKeys = 1024, kFanout = 32, kBatch = 32;
  const int kCommits = args.Scaled(500);
  double commits_per_sec = 0, delta_rows_per_sec = 0, probes_per_sec = 0;
  {
    auto program = dlog::Program::Parse(kJoinProgram);
    if (!program.ok()) return 1;
    Engine engine(*program);
    for (int k = 0; k < kKeys; ++k) {
      std::string key = KeyName(k);
      (void)engine.Insert("R", Row{Value::String(key), Value::Int(k)});
      for (int f = 0; f < kFanout; ++f) {
        (void)engine.Insert(
            "S", Row{Value::String(key), Value::Int(k * 1000 + f)});
      }
    }
    if (!engine.Commit().ok()) return 1;
    std::mt19937_64 rng(args.seed);
    std::vector<int64_t> current(kKeys);
    for (int k = 0; k < kKeys; ++k) current[static_cast<size_t>(k)] = k;
    uint64_t delta_rows = 0;
    Engine::Stats before_stats = engine.GetStats();
    Stopwatch watch;
    for (int c = 0; c < kCommits; ++c) {
      for (int b = 0; b < kBatch; ++b) {
        int k = static_cast<int>(rng() % kKeys);
        std::string key = KeyName(k);
        (void)engine.Delete(
            "R", Row{Value::String(key), Value::Int(current[k])});
        current[k] = k + 1000000LL * (c + 1) + b;
        (void)engine.Insert(
            "R", Row{Value::String(key), Value::Int(current[k])});
      }
      auto delta = engine.Commit();
      if (!delta.ok()) return 1;
      for (const auto& [name, d] : delta->outputs) delta_rows += d.size();
    }
    double seconds = watch.ElapsedSeconds();
    Engine::Stats after_stats = engine.GetStats();
    uint64_t probes = after_stats.probes - before_stats.probes;
    commits_per_sec = kCommits / seconds;
    delta_rows_per_sec = static_cast<double>(delta_rows) / seconds;
    probes_per_sec = static_cast<double>(probes) / seconds;

    Table table({"metric", "before (seed)", "after (this engine)"});
    table.AddRow({"commits/s", StrFormat("%.0f", kBeforeJoinCommitsPerSec),
                  StrFormat("%.0f", commits_per_sec)});
    table.AddRow({"delta rows/s",
                  StrFormat("%.0f", kBeforeJoinDeltaRowsPerSec),
                  StrFormat("%.0f", delta_rows_per_sec)});
    table.AddRow({"probes/s", "-", StrFormat("%.0f", probes_per_sec)});
    table.AddRow({"speedup", "1.0x",
                  StrFormat("%.2fx",
                            commits_per_sec / kBeforeJoinCommitsPerSec)});
    table.Print();
    std::printf(
        "probe detail: %llu probes, %llu hits, %llu scratch-key probes "
        "(each was a heap-allocated key Row before)\n\n",
        static_cast<unsigned long long>(probes),
        static_cast<unsigned long long>(after_stats.probe_hits -
                                        before_stats.probe_hits),
        static_cast<unsigned long long>(after_stats.key_allocs_saved -
                                        before_stats.key_allocs_saved));

    emitter.Metric("join_commits_per_s", commits_per_sec);
    emitter.Metric("join_delta_rows_per_s", delta_rows_per_sec);
    emitter.Metric("join_probes_per_s", probes_per_sec);
    emitter.Metric("join_commits_per_s_before", kBeforeJoinCommitsPerSec);
    emitter.Metric("join_delta_rows_per_s_before",
                   kBeforeJoinDeltaRowsPerSec);
    emitter.Metric("join_commit_speedup_vs_seed",
                   commits_per_sec / kBeforeJoinCommitsPerSec);
    Json::Object intern;
    intern["strings"] =
        static_cast<int64_t>(after_stats.intern.strings);
    intern["tuples"] = static_cast<int64_t>(after_stats.intern.tuples);
    intern["hits"] = static_cast<int64_t>(after_stats.intern.hits);
    intern["misses"] = static_cast<int64_t>(after_stats.intern.misses);
    emitter.Metric("intern_pool", Json(std::move(intern)));
    emitter.Metric("arrangement_bytes",
                   static_cast<int64_t>(after_stats.arrangement_bytes));
  }

  // --- workload 2: commit latency vs relation size ---
  const int kSizes[] = {1024, 4096, 16384, 65536};
  Json::Array latency_curve;
  {
    Table table({"relation size", "before us/commit", "after us/commit"});
    const int kLatencyCommits = args.Scaled(500);
    for (size_t s = 0; s < 4; ++s) {
      int size = kSizes[s];
      auto program = dlog::Program::Parse(kJoinProgram);
      Engine engine(*program);
      int keys = size / kFanout;
      for (int k = 0; k < keys; ++k) {
        std::string key = KeyName(k);
        (void)engine.Insert("R", Row{Value::String(key), Value::Int(k)});
        for (int f = 0; f < kFanout; ++f) {
          (void)engine.Insert(
              "S", Row{Value::String(key), Value::Int(k * 1000 + f)});
        }
      }
      if (!engine.Commit().ok()) return 1;
      std::mt19937_64 rng(args.seed);
      std::vector<int64_t> current(static_cast<size_t>(keys));
      for (int k = 0; k < keys; ++k) current[static_cast<size_t>(k)] = k;
      Stopwatch watch;
      for (int c = 0; c < kLatencyCommits; ++c) {
        int k = static_cast<int>(rng() % static_cast<uint64_t>(keys));
        std::string key = KeyName(k);
        (void)engine.Delete(
            "R", Row{Value::String(key), Value::Int(current[k])});
        current[k] = k + 1000000LL * (c + 1);
        (void)engine.Insert(
            "R", Row{Value::String(key), Value::Int(current[k])});
        if (!engine.Commit().ok()) return 1;
      }
      double us = watch.ElapsedSeconds() / kLatencyCommits * 1e6;
      table.AddRow({std::to_string(size), StrFormat("%.1f",
                    kBeforeLatencyUs[s]), StrFormat("%.1f", us)});
      Json::Object point;
      point["relation_size"] = size;
      point["us_per_commit"] = us;
      point["us_per_commit_before"] = kBeforeLatencyUs[s];
      latency_curve.push_back(Json(std::move(point)));
    }
    table.Print();
    std::printf("\n");
  }
  emitter.Metric("commit_latency_vs_size", Json(std::move(latency_curve)));

  // --- workload 3: peak RSS with/without interning (child processes) ---
  int64_t rss_interned = 0, rss_plain = 0;
  size_t rows_interned = 0, rows_plain = 0;
  if (!RunRssChild(self, true, args, &rss_interned, &rows_interned) ||
      !RunRssChild(self, false, args, &rss_plain, &rows_plain) ||
      rows_interned != rows_plain) {
    std::fprintf(stderr, "rss child variant failed\n");
    return 1;
  }
  {
    Table table({"variant", "peak RSS", "derived rows"});
    table.AddRow({"before (seed engine)",
                  StrFormat("%.1f MiB",
                            static_cast<double>(kBeforeRssBytes) / 1048576.0),
                  "-"});
    table.AddRow({"after, interning off",
                  StrFormat("%.1f MiB",
                            static_cast<double>(rss_plain) / 1048576.0),
                  std::to_string(rows_plain)});
    table.AddRow({"after, interning on",
                  StrFormat("%.1f MiB",
                            static_cast<double>(rss_interned) / 1048576.0),
                  std::to_string(rows_interned)});
    table.Print();
  }
  emitter.Param("rss_keys", args.Scaled(4096));
  emitter.Param("rss_fanout", 64);
  emitter.Metric("rss_bytes_before", kBeforeRssBytes);
  emitter.Metric("rss_bytes_interning_off", rss_plain);
  emitter.Metric("rss_bytes_interning_on", rss_interned);
  emitter.Metric("rss_ratio_vs_seed",
                 static_cast<double>(rss_interned) /
                     static_cast<double>(kBeforeRssBytes));

  emitter.Param("join_keys", kKeys);
  emitter.Param("join_fanout", kFanout);
  emitter.Param("join_batch", kBatch);
  emitter.Param("join_commits", kCommits);
  emitter.Write();

  std::printf(
      "\ntarget: >= 2x join-heavy commit throughput and lower peak RSS than "
      "the seed engine.\nmeasured: %.2fx throughput, %.2fx RSS.\n",
      commits_per_sec / kBeforeJoinCommitsPerSec,
      static_cast<double>(rss_interned) /
          static_cast<double>(kBeforeRssBytes));
  return 0;
}

}  // namespace
}  // namespace nerpa

int main(int argc, char** argv) {
  nerpa::bench::BenchArgs args = nerpa::bench::BenchArgs::Parse(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "rss-on") == 0) {
    return nerpa::RunRssVariant(true, args);
  }
  if (argc > 1 && std::strcmp(argv[1], "rss-off") == 0) {
    return nerpa::RunRssVariant(false, args);
  }
  return nerpa::Run(argv[0], args);
}
