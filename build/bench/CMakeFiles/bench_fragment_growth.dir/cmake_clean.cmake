file(REMOVE_RECURSE
  "CMakeFiles/bench_fragment_growth.dir/bench_fragment_growth.cc.o"
  "CMakeFiles/bench_fragment_growth.dir/bench_fragment_growth.cc.o.d"
  "bench_fragment_growth"
  "bench_fragment_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fragment_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
