// An OpenFlow-style flow layer: masked-match flows organized in a table
// pipeline, plus a software switch that evaluates them over parsed packet
// fields.
//
// Two consumers:
//   * p4c_of.h lowers a P4 program + its runtime entries to this layer —
//     the reproduction of the Nerpa repo's `p4c-of` backend, which lets the
//     same control plane drive a high-performance flow switch (§4.1).
//   * The Fig. 3 benchmark counts "OpenFlow program fragments" emitted by a
//     conventional fragment-style controller.
#ifndef NERPA_OFP_FLOW_H_
#define NERPA_OFP_FLOW_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace nerpa::ofp {

/// A masked match on one named field ("ethernet.dstAddr", "meta.vlan",
/// "vlan._valid", ...).  mask selects the significant bits.
struct OfMatch {
  std::string field;
  uint64_t value = 0;
  uint64_t mask = ~uint64_t{0};

  bool Matches(uint64_t field_value) const {
    return (field_value & mask) == (value & mask);
  }
};

struct OfAction {
  enum class Kind {
    kOutput,     // forward to port `value`
    kGroup,      // replicate via group `value`
    kSetField,   // field = value
    kClone,      // mirror the original (pre-modification) fields to a port
    kPushVlan,   // add 802.1Q tag with vid = value
    kPopVlan,
    kDrop,
  };
  Kind kind = Kind::kDrop;
  std::string field;  // kSetField
  uint64_t value = 0;

  std::string ToString() const;
};

/// One flow entry.  `cookie` records the controller code site ("fragment")
/// that emitted it — the unit Fig. 3 counts.
struct Flow {
  int table_id = 0;
  int priority = 0;
  std::vector<OfMatch> match;
  std::vector<OfAction> actions;
  std::string cookie;

  std::string ToString() const;
};

/// A parsed-packet view: named fields plus synthetic validity bits
/// ("vlan._valid").  The OF layer is defined over this view; conversion
/// from/to raw packets lives with the caller.
using FieldMap = std::map<std::string, uint64_t>;

struct OfPacketOut {
  uint64_t port = 0;
  FieldMap fields;
};

/// A pipeline of flow tables evaluated in ascending table_id order; the
/// highest-priority matching flow's actions run, then evaluation continues
/// with the next table (single-pass, goto-next semantics).  A table with no
/// matching flow simply falls through.
class FlowSwitch {
 public:
  void AddFlow(Flow flow);
  /// Removes all flows with this cookie; returns how many were removed.
  size_t RemoveByCookie(std::string_view cookie);
  void Clear();

  size_t FlowCount() const;
  /// Human-readable listing of every flow (diagnostics).
  std::string DumpFlows() const;
  /// Flows grouped by cookie — the "fragments" metric.
  std::map<std::string, size_t> FlowsByCookie() const;

  void SetGroup(uint32_t group, std::vector<uint64_t> ports);

  /// Runs `fields` through the ingress tables; returns the output packets
  /// (with per-copy egress table processing).
  std::vector<OfPacketOut> Process(const FieldMap& fields,
                                   uint64_t in_port) const;

  /// Table ids >= this bound are egress tables, applied per output copy
  /// with "standard.egress_port" set.
  void SetEgressBoundary(int first_egress_table) {
    egress_boundary_ = first_egress_table;
  }

 private:
  const Flow* Lookup(int table_id, const FieldMap& fields) const;
  /// Applies `table_range` tables to fields; returns unicast/multicast
  /// decision.
  struct Verdict {
    bool drop = false;
    std::optional<uint64_t> port;
    std::optional<uint32_t> group;
    std::vector<uint64_t> clones;
  };
  Verdict RunTables(FieldMap& fields, int first, int last) const;

  std::map<int, std::vector<Flow>> tables_;  // table_id -> flows
  std::map<uint32_t, std::vector<uint64_t>> groups_;
  int egress_boundary_ = 1 << 30;
};

}  // namespace nerpa::ofp

#endif  // NERPA_OFP_FLOW_H_
