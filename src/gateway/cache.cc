#include "gateway/cache.h"

namespace nerpa::gateway {

uint64_t ReadCache::Generation(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = generations_.find(table);
  return it == generations_.end() ? 0 : it->second;
}

void ReadCache::Bump(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  ++generations_[table];
}

void ReadCache::Touch(Entry& entry, const std::string& key) {
  lru_.erase(entry.lru_it);
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
}

std::optional<std::string> ReadCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    auto gen_it = generations_.find(it->second.table);
    uint64_t current = gen_it == generations_.end() ? 0 : gen_it->second;
    if (it->second.generation == current) {
      ++hits_;
      Touch(it->second, key);
      return it->second.body;
    }
    // Stale: a miss for coherence purposes, but the body stays resident
    // (un-touched, so LRU reclaims it under pressure) — during brownout
    // LookupStale() serves exactly these entries.
  }
  ++misses_;
  return std::nullopt;
}

std::optional<std::string> ReadCache::LookupStale(const std::string& key,
                                                 bool* fresh) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  auto gen_it = generations_.find(it->second.table);
  uint64_t current = gen_it == generations_.end() ? 0 : gen_it->second;
  if (fresh != nullptr) *fresh = it->second.generation == current;
  ++stale_hits_;
  Touch(it->second, key);
  return it->second.body;
}

void ReadCache::Insert(const std::string& key, const std::string& table,
                       uint64_t generation, std::string body) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.table = table;
    it->second.generation = generation;
    it->second.body = std::move(body);
    Touch(it->second, key);
    return;
  }
  while (entries_.size() >= max_entries_ && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(key);
  Entry entry;
  entry.table = table;
  entry.generation = generation;
  entry.body = std::move(body);
  entry.lru_it = lru_.begin();
  entries_.emplace(key, std::move(entry));
}

uint64_t ReadCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ReadCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t ReadCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

uint64_t ReadCache::stale_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stale_hits_;
}

size_t ReadCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace nerpa::gateway
