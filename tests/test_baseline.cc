// Tests for the baseline controllers: the hand-written incremental
// controller must compute exactly the same state as the recompute-all
// oracle under randomized event streams — the bug class §2.2 says took
// ovn-controller years to shake out.
#include <gtest/gtest.h>

#include <random>

#include "baseline/imperative.h"
#include "common/strings.h"

namespace nerpa::baseline {
namespace {

TEST(FullRecompute, SinkSeesDiffsOnly) {
  std::vector<std::pair<LogicalEntry, int>> ops;
  FullRecomputeController controller(
      [&](const LogicalEntry& entry, int direction) {
        ops.emplace_back(entry, direction);
      });
  controller.AddPort({"p1", 1, false, 10, {}});
  size_t after_first = ops.size();
  EXPECT_GT(after_first, 0u);
  // Re-adding the identical port is a no-op diff.
  controller.AddPort({"p1", 1, false, 10, {}});
  EXPECT_EQ(ops.size(), after_first);
  EXPECT_EQ(controller.recompute_count(), 2u);
}

TEST(Imperative, PortLifecycle) {
  ImperativeIncrementalController controller([](const LogicalEntry&, int) {});
  controller.AddPort({"p1", 1, false, 10, {}});
  controller.AddPort({"p2", 2, true, 0, {10, 20}});
  EXPECT_EQ(controller.installed(),
            ComputeDesiredState({{"p1", {"p1", 1, false, 10, {}}},
                                 {"p2", {"p2", 2, true, 0, {10, 20}}}},
                                {}, {}, {}));
  controller.RemovePort("p1");
  EXPECT_EQ(controller.installed(),
            ComputeDesiredState({{"p2", {"p2", 2, true, 0, {10, 20}}}}, {},
                                {}, {}));
  controller.RemovePort("p2");
  EXPECT_TRUE(controller.installed().empty());
}

TEST(Imperative, LearnMostRecentWins) {
  ImperativeIncrementalController controller([](const LogicalEntry&, int) {});
  controller.Learn({1, 10, 0xAB, 1});
  controller.Learn({3, 10, 0xAB, 2});   // move to port 3
  controller.Learn({1, 10, 0xAB, 0});   // stale: ignored
  EXPECT_EQ(controller.installed().count({"Dmac", {10, 0xAB, 3}}), 1u);
  EXPECT_EQ(controller.installed().count({"Dmac", {10, 0xAB, 1}}), 0u);
}

/// The randomized equivalence drill: any divergence between the
/// hand-written incremental controller and the recompute oracle is exactly
/// the class of bug that got OVN's first incremental engine reverted.
TEST(Imperative, RandomizedEquivalenceWithOracle) {
  std::mt19937_64 rng(1234);
  for (int round = 0; round < 20; ++round) {
    ImperativeIncrementalController incremental(
        [](const LogicalEntry&, int) {});
    std::map<std::string, PortConfig> ports;
    std::map<std::string, MirrorConfig> mirrors;
    std::vector<AclConfig> acls;
    std::vector<LearnEvent> learns;
    int64_t seq = 0;

    for (int step = 0; step < 120; ++step) {
      switch (rng() % 6) {
        case 0: {  // add/replace access port
          int id = static_cast<int>(rng() % 12);
          PortConfig port{StrFormat("p%d", id), id, false,
                          static_cast<int64_t>(rng() % 4) + 1, {}};
          ports[port.name] = port;
          incremental.AddPort(port);
          break;
        }
        case 1: {  // add/replace trunk port
          int id = static_cast<int>(rng() % 12);
          std::vector<int64_t> trunks;
          for (int64_t vlan = 1; vlan <= 4; ++vlan) {
            if (rng() % 2) trunks.push_back(vlan);
          }
          PortConfig port{StrFormat("p%d", id), id, true, 0, trunks};
          ports[port.name] = port;
          incremental.AddPort(port);
          break;
        }
        case 2: {  // remove port
          int id = static_cast<int>(rng() % 12);
          std::string name = StrFormat("p%d", id);
          ports.erase(name);
          incremental.RemovePort(name);
          break;
        }
        case 3: {  // mirror
          MirrorConfig mirror{StrFormat("m%d", static_cast<int>(rng() % 4)),
                              static_cast<int64_t>(rng() % 12),
                              static_cast<int64_t>(rng() % 12)};
          mirrors[mirror.name] = mirror;
          incremental.AddMirror(mirror);
          break;
        }
        case 4: {  // acl
          AclConfig acl{static_cast<int64_t>(rng() % 8),
                        static_cast<int64_t>(rng() % 4) + 1, rng() % 2 == 0};
          acls.push_back(acl);
          incremental.AddAcl(acl);
          break;
        }
        case 5: {  // learn
          LearnEvent learn{static_cast<int64_t>(rng() % 12),
                           static_cast<int64_t>(rng() % 4) + 1,
                           static_cast<int64_t>(rng() % 8), seq++};
          learns.push_back(learn);
          incremental.Learn(learn);
          break;
        }
      }
      if (step % 30 == 29) {
        EntrySet expected = ComputeDesiredState(ports, mirrors, acls, learns);
        ASSERT_EQ(incremental.installed(), expected)
            << "divergence at round " << round << " step " << step;
      }
    }
  }
}

}  // namespace
}  // namespace nerpa::baseline
