// Deterministic chaos harness: seeded fault schedules spanning the three
// seams the stack's robustness story rests on.
//
//   * Data plane   — device write failures and stalls, injected through
//                    ha::FaultyRuntimeClient (quarantined by the
//                    controller's per-device circuit breakers).
//   * Management   — transport drops under the OVSDB JSON-RPC session,
//     plane          injected through OvsdbClient::InjectTransportFault()
//                    (healed by monitor_since session resumption).
//   * Durability   — torn appends, lost flushes, and flipped bytes in the
//                    snapshot/WAL files, injected through ChaosIo
//                    (tolerated by CRC framing + snapshot fallback).
//
// Everything is driven by a ChaosSchedule: one seeded PRNG whose decision
// stream is a pure function of the seed, so any failing soak run replays
// exactly from its seed.  The harness never reaches into the recovery
// logic — every fault enters through a production interface.
#ifndef NERPA_CHAOS_CHAOS_H_
#define NERPA_CHAOS_CHAOS_H_

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <string_view>

#include "common/status.h"
#include "ha/io.h"

namespace nerpa::chaos {

/// The seeded decision stream.  All probability draws for one soak run
/// flow through a single schedule so the run is reproducible from the
/// seed alone.
class ChaosSchedule {
 public:
  explicit ChaosSchedule(uint64_t seed) : rng_(seed), seed_(seed) {}

  uint64_t seed() const { return seed_; }

  /// True with probability `p` (deterministic given the draw sequence).
  bool Flip(double p) {
    if (p <= 0) return false;
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < p;
  }

  /// Uniform integer in [0, bound) — e.g. which byte of a file to flip.
  uint64_t Pick(uint64_t bound) {
    if (bound == 0) return 0;
    return std::uniform_int_distribution<uint64_t>(0, bound - 1)(rng_);
  }

  /// Derives a decorrelated seed for a subordinate fault source (e.g. a
  /// per-device FaultyRuntimeClient).
  uint64_t Fork() { return rng_(); }

 private:
  std::mt19937_64 rng_;
  uint64_t seed_;
};

/// Fault probabilities for the filesystem seam.
struct ChaosIoPolicy {
  double read_corrupt_probability = 0.0;   // flip one byte of a ReadFile
  double write_corrupt_probability = 0.0;  // flip one byte being written
  double torn_append_probability = 0.0;    // persist only a prefix + die
  double append_fail_probability = 0.0;    // appender reports an error
};

/// An ha::Io decorator that injects policy-driven corruption while
/// delegating real persistence to an inner Io.  Faults draw from the
/// shared ChaosSchedule, which must outlive the ChaosIo; the durability
/// layer under test sees exactly the disk states its corruption policy
/// claims to survive.
class ChaosIo : public ha::Io {
 public:
  /// Neither pointer is owned.  `inner` nullptr = ha::DefaultIo().
  ChaosIo(ChaosSchedule* schedule, const ChaosIoPolicy& policy,
          ha::Io* inner = nullptr);

  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFileAtomic(const std::string& path,
                         std::string_view contents) override;
  Result<std::unique_ptr<ha::Appender>> OpenAppend(
      const std::string& path) override;
  Status Truncate(const std::string& path) override;
  Status TruncateTo(const std::string& path, uint64_t size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  bool Exists(const std::string& path) override;
  Status Remove(const std::string& path) override;

  struct Stats {
    uint64_t corrupted_reads = 0;
    uint64_t corrupted_writes = 0;
    uint64_t torn_appends = 0;
    uint64_t failed_appends = 0;
  };
  const Stats& stats() const { return stats_; }
  uint64_t injected_faults() const {
    return stats_.corrupted_reads + stats_.corrupted_writes +
           stats_.torn_appends + stats_.failed_appends;
  }

 private:
  friend class ChaosAppender;

  ChaosSchedule* schedule_;
  ChaosIoPolicy policy_;
  ha::Io* inner_;
  Stats stats_;
};

// --- Replication seam: leader-lease pathologies -------------------------

/// Which lease pathology (if any) to inject at one scheduling step of a
/// failover soak.  These target the fourth seam — controller replication —
/// on top of the three above:
///
///   kLeaseLoss:     the leader silently stops renewing; the lease runs
///                   out its TTL and the standby takes over (the clean
///                   crash / network-partition case).
///   kClockSkew:     the shared clock jumps forward mid-lease, expiring
///                   it from everyone's point of view at once; both
///                   replicas race to (re)acquire through the CAS.
///   kZombieLeader:  the leader stops renewing but *keeps issuing
///                   writes* after the standby promotes — the case the
///                   fencing tokens exist for.
enum class LeaseFault { kNone, kLeaseLoss, kClockSkew, kZombieLeader };

const char* LeaseFaultName(LeaseFault fault);

/// Per-step probabilities for the replication seam.  At most one fault
/// fires per draw; the draw order is fixed (loss, skew, zombie) so a soak
/// run stays a pure function of its seed.
struct LeaseFaultPolicy {
  double lease_loss_probability = 0.0;
  double clock_skew_probability = 0.0;
  double zombie_probability = 0.0;
};

/// Draws the next lease fault from the schedule.  Exactly three Flip()s
/// are consumed regardless of outcome, keeping the decision stream
/// aligned across replays even when an early draw fires.
LeaseFault DrawLeaseFault(ChaosSchedule& schedule,
                          const LeaseFaultPolicy& policy);

/// Counts of replication-seam faults injected by a soak run.
struct LeaseFaultTally {
  uint64_t lease_loss = 0;
  uint64_t clock_skew = 0;
  uint64_t zombie = 0;
  uint64_t total() const { return lease_loss + clock_skew + zombie; }
  void Count(LeaseFault fault);
};

}  // namespace nerpa::chaos

#endif  // NERPA_CHAOS_CHAOS_H_
