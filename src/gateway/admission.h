// Admission control for the northbound gateway: a token bucket caps the
// sustained request rate (with a burst allowance) and an inflight cap
// bounds concurrent backend work.  A request that fails either check is
// shed immediately with 503 + Retry-After instead of queueing without
// bound — bounded latency for admitted work beats best-effort latency
// for everything, especially at 2x offered load (see bench_gateway).
#ifndef NERPA_GATEWAY_ADMISSION_H_
#define NERPA_GATEWAY_ADMISSION_H_

#include <cstdint>
#include <mutex>

namespace nerpa::gateway {

class AdmissionController {
 public:
  /// `rate_per_sec` tokens accrue per second up to `burst`; at most
  /// `max_inflight` admitted requests may be outstanding at once.
  /// A rate of 0 disables the token bucket (inflight cap still applies);
  /// an inflight cap of 0 disables that check too.
  AdmissionController(double rate_per_sec, double burst, size_t max_inflight);

  /// Attempts to admit one request at time `now_ns` (MonotonicNanos).
  /// On success the caller owes a matching Release().
  bool TryAdmit(int64_t now_ns);

  /// Marks one admitted request finished.
  void Release();

  uint64_t admitted() const;
  uint64_t shed() const;
  size_t inflight() const;

 private:
  mutable std::mutex mu_;
  const double rate_per_sec_;
  const double burst_;
  const size_t max_inflight_;
  double tokens_;
  int64_t last_refill_ns_ = 0;
  size_t inflight_ = 0;
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
};

}  // namespace nerpa::gateway

#endif  // NERPA_GATEWAY_ADMISSION_H_
