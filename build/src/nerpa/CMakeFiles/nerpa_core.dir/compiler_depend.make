# Empty compiler generated dependencies file for nerpa_core.
# This may be replaced when dependencies are built.
