#include "p4/runtime.h"

#include "common/strings.h"

namespace nerpa::p4 {

const char* UpdateTypeName(UpdateType type) {
  switch (type) {
    case UpdateType::kInsert: return "insert";
    case UpdateType::kModify: return "modify";
    case UpdateType::kDelete: return "delete";
  }
  return "?";
}

namespace {
uint64_t WidthMask(int width) {
  return width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
}
}  // namespace

Status RuntimeClient::ValidateEntry(const TableEntry& entry,
                                    UpdateType type) const {
  const Table* table = program().FindTable(entry.table);
  if (table == nullptr) {
    return NotFound("no table '" + entry.table + "'");
  }
  if (entry.match.size() != table->keys.size()) {
    return InvalidArgument(StrFormat(
        "table '%s' has %zu keys, entry supplies %zu", table->name.c_str(),
        table->keys.size(), entry.match.size()));
  }
  for (size_t i = 0; i < table->keys.size(); ++i) {
    const TableKey& key = table->keys[i];
    const MatchField& field = entry.match[i];
    uint64_t mask = WidthMask(key.width);
    if ((field.value & mask) != field.value) {
      return InvalidArgument(StrFormat(
          "match value %llx exceeds bit<%d> key %s of table %s",
          static_cast<unsigned long long>(field.value), key.width,
          key.field.text.c_str(), table->name.c_str()));
    }
    if (key.kind == MatchKind::kLpm &&
        (field.prefix_len < 0 || field.prefix_len > key.width)) {
      return InvalidArgument(StrFormat(
          "prefix length %d out of range for bit<%d> LPM key",
          field.prefix_len, key.width));
    }
    if (key.kind == MatchKind::kRange && field.high < field.value) {
      return InvalidArgument("range match with high < low");
    }
  }
  if (type == UpdateType::kDelete) return Status::Ok();
  const Action* action = program().FindAction(entry.action);
  if (action == nullptr) {
    return NotFound("no action '" + entry.action + "'");
  }
  bool permitted = false;
  for (const std::string& allowed : table->actions) {
    if (allowed == entry.action) permitted = true;
  }
  if (!permitted) {
    return FailedPrecondition(StrFormat(
        "action '%s' is not permitted in table '%s'", action->name.c_str(),
        table->name.c_str()));
  }
  if (entry.action_args.size() != action->params.size()) {
    return InvalidArgument(StrFormat(
        "action '%s' takes %zu parameters, entry supplies %zu",
        action->name.c_str(), action->params.size(),
        entry.action_args.size()));
  }
  for (size_t i = 0; i < action->params.size(); ++i) {
    uint64_t mask = WidthMask(action->params[i].width);
    if ((entry.action_args[i] & mask) != entry.action_args[i]) {
      return InvalidArgument(StrFormat(
          "argument %llx exceeds bit<%d> parameter '%s' of action '%s'",
          static_cast<unsigned long long>(entry.action_args[i]),
          action->params[i].width, action->params[i].name.c_str(),
          action->name.c_str()));
    }
  }
  return Status::Ok();
}

Status RuntimeClient::Write(const std::vector<Update>& updates) {
  NERPA_RETURN_IF_ERROR(switch_->CheckFence(fence_token_));
  for (const Update& update : updates) {
    NERPA_RETURN_IF_ERROR(ValidateEntry(update.entry, update.type));
  }
  for (const Update& update : updates) {
    TableState* table = switch_->GetTable(update.entry.table);
    switch (update.type) {
      case UpdateType::kInsert:
        NERPA_RETURN_IF_ERROR(table->Insert(update.entry));
        break;
      case UpdateType::kModify:
        NERPA_RETURN_IF_ERROR(table->Modify(update.entry));
        break;
      case UpdateType::kDelete:
        NERPA_RETURN_IF_ERROR(table->Remove(update.entry));
        break;
    }
    ++write_count_;
  }
  return Status::Ok();
}

Status RuntimeClient::Insert(TableEntry entry) {
  return Write({Update{UpdateType::kInsert, std::move(entry)}});
}

Status RuntimeClient::Modify(TableEntry entry) {
  return Write({Update{UpdateType::kModify, std::move(entry)}});
}

Status RuntimeClient::Delete(TableEntry entry) {
  return Write({Update{UpdateType::kDelete, std::move(entry)}});
}

Result<std::vector<TableEntry>> RuntimeClient::ReadTable(
    std::string_view table_name) const {
  const TableState* table =
      static_cast<const Switch*>(switch_)->GetTable(table_name);
  if (table == nullptr) {
    return NotFound("no table '" + std::string(table_name) + "'");
  }
  std::vector<TableEntry> out;
  for (const TableEntry* entry : table->Entries()) out.push_back(*entry);
  return out;
}

Result<std::vector<std::pair<TableEntry, uint64_t>>>
RuntimeClient::ReadCounters(std::string_view table_name) const {
  const TableState* table =
      static_cast<const Switch*>(switch_)->GetTable(table_name);
  if (table == nullptr) {
    return NotFound("no table '" + std::string(table_name) + "'");
  }
  std::vector<std::pair<TableEntry, uint64_t>> out;
  for (const TableEntry* entry : table->Entries()) {
    out.emplace_back(*entry, entry->hit_count);
  }
  return out;
}

Status RuntimeClient::SetMulticastGroup(uint32_t group,
                                        std::vector<uint64_t> ports) {
  NERPA_RETURN_IF_ERROR(switch_->CheckFence(fence_token_));
  switch_->SetMulticastGroup(group, std::move(ports));
  ++write_count_;
  return Status::Ok();
}

Result<std::vector<std::pair<uint32_t, std::vector<uint64_t>>>>
RuntimeClient::ReadMulticastGroups() const {
  std::vector<std::pair<uint32_t, std::vector<uint64_t>>> out;
  for (const auto& [group, ports] : switch_->multicast_groups()) {
    out.emplace_back(group, ports);
  }
  return out;
}

void RuntimeClient::PollDigests() {
  if (!digest_handler_) return;
  for (const DigestMessage& digest : switch_->TakeDigests()) {
    digest_handler_(digest);
  }
}

}  // namespace nerpa::p4
