#include "ha/durable.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "common/hash.h"
#include "common/log.h"
#include "common/strings.h"

namespace nerpa::ha {

namespace {

constexpr const char* kSnapshotFormat = "nerpa-ha-snapshot-v1";
constexpr const char* kTrailerPrefix = "#crc32 ";

// Engine-checkpoint sidecar frame: magic, format version, CRC32 of the
// payload, payload length, payload bytes.  All integers little-endian.
constexpr char kCkptMagic[8] = {'n', 'e', 'r', 'p', 'a', 'e', 'c', 'k'};
constexpr uint32_t kCkptVersion = 1;

std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.json";
}
std::string WalPath(const std::string& dir) { return dir + "/wal.jsonl"; }

bool ValidCheckpointName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string CheckpointPath(const std::string& dir, const std::string& name) {
  return dir + "/engine." + name + ".ckpt";
}

void PutLe32(std::string& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(buf));
}

void PutLe64(std::string& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(buf));
}

}  // namespace

Json DurableStore::SnapshotJson(const ovsdb::Database& db,
                                int64_t digest_seq) {
  Json::Object tables;
  for (const auto& [table_name, table_schema] : db.schema().tables) {
    std::vector<const ovsdb::Row*> rows = db.GetRows(table_name);
    // Sort by uuid so identical databases produce identical snapshots.
    std::sort(rows.begin(), rows.end(),
              [](const ovsdb::Row* a, const ovsdb::Row* b) {
                return a->uuid < b->uuid;
              });
    Json::Array out_rows;
    for (const ovsdb::Row* row : rows) {
      Json::Object columns;
      for (const auto& [column, datum] : row->columns) {
        columns[column] = datum.ToJson();
      }
      Json::Object entry;
      entry["uuid"] = Json(row->uuid.ToString());
      entry["row"] = Json(std::move(columns));
      out_rows.push_back(Json(std::move(entry)));
    }
    tables[table_name] = Json(std::move(out_rows));
  }
  Json::Object doc;
  doc["format"] = Json(kSnapshotFormat);
  doc["schema"] = Json(db.schema().name);
  doc["digest_seq"] = Json(digest_seq);
  doc["tables"] = Json(std::move(tables));
  return Json(std::move(doc));
}

std::string DurableStore::EncodeSnapshot(const Json& snapshot) {
  std::string json = snapshot.Dump();
  std::string out = json;
  out += "\n";
  out += kTrailerPrefix;
  out += StrFormat("%08x", static_cast<unsigned>(Crc32(json)));
  out += "\n";
  return out;
}

Result<Json> DurableStore::DecodeSnapshot(const std::string& text) {
  std::string_view body = text;
  size_t newline = body.find('\n');
  if (newline != std::string_view::npos) {
    std::string_view rest = Trim(body.substr(newline + 1));
    if (StartsWith(rest, kTrailerPrefix)) {
      std::string_view hex = rest.substr(std::string_view(kTrailerPrefix).size());
      std::string_view json = body.substr(0, newline);
      unsigned stored = 0;
      bool hex_ok = hex.size() == 8;
      for (char c : hex) {
        if (c >= '0' && c <= '9') {
          stored = (stored << 4) | static_cast<unsigned>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          stored = (stored << 4) | (static_cast<unsigned>(c - 'a') + 10);
        } else {
          hex_ok = false;
          break;
        }
      }
      uint32_t computed = Crc32(json);
      if (!hex_ok || stored != computed) {
        return Internal(StrFormat(
            "snapshot crc mismatch (stored %.*s, computed %08x)",
            static_cast<int>(hex.size()), hex.data(),
            static_cast<unsigned>(computed)));
      }
      return Json::Parse(std::string(json));
    }
  }
  // Legacy snapshot without a trailer: accepted unverified.
  return Json::Parse(text);
}

Status DurableStore::ApplySnapshot(ovsdb::Database& db, const Json& snapshot) {
  const Json* format = snapshot.Find("format");
  if (format == nullptr || !format->is_string() ||
      format->as_string() != kSnapshotFormat) {
    return ParseError("snapshot has missing/unsupported format tag");
  }
  const Json* tables = snapshot.Find("tables");
  if (tables == nullptr || !tables->is_object()) {
    return ParseError("snapshot missing 'tables' object");
  }
  // One transaction restores everything: intra-snapshot references resolve
  // because constraints are enforced at commit, and atomicity means a
  // half-applied snapshot can never be observed.
  Json::Array ops;
  for (const auto& [table_name, rows] : tables->as_object()) {
    if (!rows.is_array()) {
      return ParseError("snapshot table '" + table_name + "' is not an array");
    }
    for (const Json& entry : rows.as_array()) {
      const Json* uuid = entry.Find("uuid");
      const Json* row = entry.Find("row");
      if (uuid == nullptr || !uuid->is_string() || row == nullptr ||
          !row->is_object()) {
        return ParseError("snapshot row entry malformed in table '" +
                          table_name + "'");
      }
      Json::Object op;
      op["op"] = Json("insert");
      op["table"] = Json(table_name);
      op["uuid"] = *uuid;
      op["row"] = *row;
      ops.push_back(Json(std::move(op)));
    }
  }
  if (ops.empty()) return Status::Ok();
  Result<Json> applied = db.Transact(Json(std::move(ops)));
  if (!applied.ok()) {
    return Internal("snapshot restore failed: " +
                    applied.status().ToString());
  }
  return Status::Ok();
}

DurableStore::DurableStore(std::unique_ptr<ovsdb::Database> db,
                           WriteAheadLog wal, std::string dir, Io* io)
    : db_(std::move(db)), wal_(std::move(wal)), dir_(std::move(dir)),
      io_(io) {}

DurableStore::~DurableStore() {
  if (hook_id_ != 0 && db_ != nullptr) db_->RemoveCommitHook(hook_id_);
}

std::unique_ptr<ovsdb::Database> DurableStore::Release() && {
  if (hook_id_ != 0) {
    db_->RemoveCommitHook(hook_id_);
    hook_id_ = 0;
  }
  return std::move(db_);
}

namespace {

/// Reads, checksum-verifies, parses, and applies one snapshot file.
/// Returns the recovered digest_seq.
Result<int64_t> RestoreSnapshotFile(ovsdb::Database& db, Io& io,
                                    const std::string& path) {
  NERPA_ASSIGN_OR_RETURN(std::string text, io.ReadFile(path));
  NERPA_ASSIGN_OR_RETURN(Json snapshot, DurableStore::DecodeSnapshot(text));
  NERPA_RETURN_IF_ERROR(DurableStore::ApplySnapshot(db, snapshot));
  int64_t digest_seq = 0;
  if (const Json* seq = snapshot.Find("digest_seq");
      seq != nullptr && seq->is_integer()) {
    digest_seq = seq->as_integer();
  }
  return digest_seq;
}

}  // namespace

Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    ovsdb::DatabaseSchema schema, const std::string& dir, Io* io) {
  if (io == nullptr) io = &DefaultIo();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Internal("cannot create HA directory '" + dir +
                    "': " + ec.message());
  }
  auto db = std::make_unique<ovsdb::Database>(std::move(schema));

  const std::string snap = SnapshotPath(dir);
  const std::string snap1 = snap + ".1";
  const std::string wal1 = WalPath(dir) + ".1";

  bool recovered = false;
  bool fell_back = false;
  int64_t digest_seq = 0;
  uint64_t snapshot_rows = 0;
  uint64_t replayed = 0;
  uint64_t truncated = 0;

  auto apply_record = [&db](const Json& record) {
    return db->Transact(record).status();
  };

  if (io->Exists(snap)) {
    Result<int64_t> seq = RestoreSnapshotFile(*db, *io, snap);
    if (seq.ok()) {
      digest_seq = seq.value();
      recovered = true;
    } else {
      // Corrupt current snapshot: fall back to the previous snapshot plus
      // the longer WAL replay (wal.jsonl.1 first, then wal.jsonl).
      LOG_WARNING << "ha: snapshot '" << snap << "' unusable ("
               << seq.status().ToString()
               << "); falling back to previous snapshot";
      fell_back = true;
      db = std::make_unique<ovsdb::Database>(db->schema());
    }
  }
  if (fell_back || (!io->Exists(snap) && io->Exists(snap1))) {
    // Either the current snapshot was corrupt, or a crash between rotation
    // and publication left no current snapshot at all.  Both recover from
    // the previous generation.
    fell_back = true;
    if (io->Exists(snap1)) {
      Result<int64_t> seq = RestoreSnapshotFile(*db, *io, snap1);
      if (!seq.ok()) {
        return Internal("both snapshot generations unusable under '" + dir +
                        "': " + seq.status().ToString());
      }
      digest_seq = seq.value();
      recovered = true;
    }
    if (io->Exists(wal1)) {
      NERPA_RETURN_IF_ERROR(WriteAheadLog::ReplayFile(
          wal1, *io, apply_record, &replayed, &truncated));
      recovered = true;
    }
  }
  if (recovered) {
    for (const auto& [table, unused] : db->schema().tables) {
      snapshot_rows += db->RowCount(table);
    }
  }

  NERPA_ASSIGN_OR_RETURN(WriteAheadLog wal,
                         WriteAheadLog::Open(WalPath(dir), io));
  NERPA_RETURN_IF_ERROR(wal.Replay(apply_record));
  if (wal.records_replayed() > 0) recovered = true;

  auto store = std::unique_ptr<DurableStore>(
      new DurableStore(std::move(db), std::move(wal), dir, io));
  store->recovered_ = recovered;
  store->recovered_digest_seq_ = digest_seq;
  store->recovered_snapshot_rows_ = snapshot_rows;
  store->recovered_wal_records_ = replayed + store->wal_.records_replayed();
  store->recovered_truncated_tail_ = truncated;
  store->snapshot_fallbacks_ = fell_back ? 1 : 0;
  // Attach the WAL hook only now: recovery replay must not re-append the
  // records it is reading.
  store->hook_id_ = store->db_->AddCommitHook([raw = store.get()](
                                                  const Json& pinned) {
    Status appended = raw->wal_.Append(pinned);
    if (!appended.ok()) {
      LOG_ERROR << "ha: WAL append failed (transaction is NOT durable): "
                << appended.ToString();
    }
  });
  return store;
}

Status DurableStore::Checkpoint(int64_t digest_seq) {
  Json snapshot = SnapshotJson(*db_, digest_seq);
  const std::string snap = SnapshotPath(dir_);
  // Crash-safe rotation: after every individual step below, the on-disk
  // state still recovers to the current database under Open()'s rules
  // (snapshot.json + wal.jsonl, else snapshot.json.1 [+ wal.jsonl.1]
  // + wal.jsonl).
  //
  //   1. Drop the stale wal.jsonl.1 — it is subsumed by the current
  //      snapshot.  Were it left in place, a crash after step 2 would
  //      make recovery replay it on top of the NEWER snapshot.json.1,
  //      double-applying uuid-pinned transactions.
  //   2. Rotate snapshot.json -> snapshot.json.1.  A crash here leaves
  //      snapshot.json.1 + wal.jsonl, which Open() recovers (a missing
  //      wal.jsonl.1 is tolerated).
  //   3. Rotate wal.jsonl -> wal.jsonl.1 and start a fresh segment.  A
  //      crash here leaves snapshot.json.1 + wal.jsonl.1 + empty WAL.
  //   4. Publish the new snapshot atomically, restoring the invariant:
  //      snapshot.json.1 + wal.jsonl.1 reproduce exactly snapshot.json,
  //      so a corrupt current snapshot can always be recovered from the
  //      previous generation plus the longer replay.
  NERPA_RETURN_IF_ERROR(io_->Remove(WalPath(dir_) + ".1"));
  if (io_->Exists(snap)) {
    NERPA_RETURN_IF_ERROR(io_->Rename(snap, snap + ".1"));
  }
  NERPA_RETURN_IF_ERROR(wal_.Rotate());
  NERPA_RETURN_IF_ERROR(io_->WriteFileAtomic(snap, EncodeSnapshot(snapshot)));
  ++checkpoints_;
  snapshot_rows_ = 0;
  for (const auto& [table, unused] : db_->schema().tables) {
    snapshot_rows_ += db_->RowCount(table);
  }
  recovered_digest_seq_ = digest_seq;
  return Status::Ok();
}

Status DurableStore::WriteEngineCheckpoint(const std::string& name,
                                           std::string_view blob) {
  if (!ValidCheckpointName(name)) {
    return InvalidArgument("bad engine checkpoint name '" + name + "'");
  }
  std::string framed;
  framed.reserve(sizeof(kCkptMagic) + 16 + blob.size());
  framed.append(kCkptMagic, sizeof(kCkptMagic));
  PutLe32(framed, kCkptVersion);
  PutLe32(framed, Crc32(blob));
  PutLe64(framed, blob.size());
  framed.append(blob);
  NERPA_RETURN_IF_ERROR(
      io_->WriteFileAtomic(CheckpointPath(dir_, name), framed));
  ++engine_checkpoints_;
  return Status::Ok();
}

Result<std::string> DurableStore::ReadEngineCheckpoint(
    const std::string& name) const {
  if (!ValidCheckpointName(name)) {
    return InvalidArgument("bad engine checkpoint name '" + name + "'");
  }
  const std::string path = CheckpointPath(dir_, name);
  if (!io_->Exists(path)) {
    return NotFound("no engine checkpoint '" + name + "'");
  }
  NERPA_ASSIGN_OR_RETURN(std::string framed, io_->ReadFile(path));
  constexpr size_t kHeader = sizeof(kCkptMagic) + 4 + 4 + 8;
  auto corrupt = [&](const std::string& why) {
    return Internal("engine checkpoint '" + path + "' rejected: " + why);
  };
  if (framed.size() < kHeader) return corrupt("truncated header");
  if (std::memcmp(framed.data(), kCkptMagic, sizeof(kCkptMagic)) != 0) {
    return corrupt("bad magic");
  }
  uint32_t version = 0;
  uint32_t crc = 0;
  uint64_t size = 0;
  std::memcpy(&version, framed.data() + sizeof(kCkptMagic), sizeof(version));
  std::memcpy(&crc, framed.data() + sizeof(kCkptMagic) + 4, sizeof(crc));
  std::memcpy(&size, framed.data() + sizeof(kCkptMagic) + 8, sizeof(size));
  if (version != kCkptVersion) {
    return corrupt(StrFormat("unsupported version %u", version));
  }
  if (framed.size() - kHeader != size) return corrupt("length mismatch");
  std::string blob = framed.substr(kHeader);
  if (Crc32(blob) != crc) return corrupt("crc mismatch");
  return blob;
}

DurableStore::Stats DurableStore::stats() const {
  Stats stats;
  stats.checkpoints = checkpoints_;
  stats.snapshot_rows = snapshot_rows_;
  stats.recovered_snapshot_rows = recovered_snapshot_rows_;
  stats.recovered_wal_records = recovered_wal_records_;
  stats.truncated_tail_records =
      recovered_truncated_tail_ + wal_.truncated_tail_records();
  stats.wal_records_appended = wal_.records_appended();
  stats.snapshot_fallbacks = snapshot_fallbacks_;
  stats.engine_checkpoints = engine_checkpoints_;
  return stats;
}

Result<std::unique_ptr<ovsdb::Database>> RecoverDatabase(
    ovsdb::DatabaseSchema schema, const std::string& dir, Io* io) {
  Io& fs = io != nullptr ? *io : DefaultIo();
  if (!fs.Exists(SnapshotPath(dir)) && !fs.Exists(WalPath(dir)) &&
      !fs.Exists(SnapshotPath(dir) + ".1")) {
    return NotFound("no HA state under '" + dir + "'");
  }
  NERPA_ASSIGN_OR_RETURN(std::unique_ptr<DurableStore> store,
                         DurableStore::Open(std::move(schema), dir, &fs));
  // Detach the store scaffolding; keep only the rebuilt database.
  return std::move(*store).Release();
}

}  // namespace nerpa::ha
