file(REMOVE_RECURSE
  "CMakeFiles/networked_stack.dir/networked_stack.cpp.o"
  "CMakeFiles/networked_stack.dir/networked_stack.cpp.o.d"
  "networked_stack"
  "networked_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/networked_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
