// A TCP OVSDB server: the management plane behind a real process-style
// boundary, speaking the RFC 7047 JSON-RPC methods the prototype's OVSDB
// spoke ("get_schema", "transact", "monitor", "monitor_cancel", "echo",
// "list_dbs").  Monitor updates are pushed to subscribers as "update"
// notifications.
//
// Session resumption ("monitor_since", modeled on OVSDB's
// monitor_cond_since): every committed transaction gets a monotonically
// increasing txn-id, and the last kHistoryLimit deltas are kept in a
// bounded history.  A client reconnecting after a dropped transport sends
// its last seen txn-id plus the server's instance epoch (an id minted per
// Start(), as real OVSDB uses an instance UUID); if the epoch matches and
// the gap is still in the history window the server replays exactly the
// missed deltas (tagged with their txn-ids), otherwise — gap aged out, or
// the txn-id came from a different server incarnation whose counter is
// unrelated — it answers found=false with a full dump.  Either way the
// client's update stream is gap-free.
//
// Exactly-once "transact": responses are cached (bounded) under the
// request's string id, so a healed client re-sending a transact whose
// response was lost gets the original answer instead of a second apply.
//
// Threading model: the server owns a single service thread which is the
// ONLY accessor of the Database after Start() — clients (including the
// in-process OvsdbClient) interact exclusively through the socket.
#ifndef NERPA_OVSDB_SERVER_H_
#define NERPA_OVSDB_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "ovsdb/database.h"
#include "ovsdb/jsonrpc.h"

namespace nerpa::ovsdb {

class OvsdbServer {
 public:
  /// Takes ownership of the database.  Nothing listens until Start().
  explicit OvsdbServer(std::unique_ptr<Database> db);
  ~OvsdbServer();

  OvsdbServer(const OvsdbServer&) = delete;
  OvsdbServer& operator=(const OvsdbServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the service thread.
  Status Start(uint16_t port = 0);
  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }
  /// Stops the service thread and closes every connection.
  void Stop();

  /// Requests served (for tests).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Retried transacts answered from the response cache without being
  /// re-applied (for tests).
  uint64_t transacts_deduped() const {
    return transacts_deduped_.load(std::memory_order_relaxed);
  }

  /// Non-priority sessions dropped because their outbox exceeded the cap
  /// (the peer stopped reading while monitor fan-out kept producing).
  uint64_t slow_consumer_drops() const {
    return slow_consumer_drops_.load(std::memory_order_relaxed);
  }

  /// Requests refused because their envelope deadline had already expired
  /// when they reached the front of the service queue — work the caller
  /// abandoned, skipped before evaluation (for tests and ops).
  uint64_t deadline_rejects() const {
    return deadline_rejects_.load(std::memory_order_relaxed);
  }

  /// Shrinks the replay history window (call before Start()).  Tests use
  /// a tiny window to force the found=false full-dump path.
  void set_history_limit(size_t limit) { history_limit_ = limit; }

  /// Caps the per-client outbox (call before Start()).  A non-priority
  /// session whose outbox exceeds the cap is dropped rather than allowed
  /// to hold transaction commit latency hostage; priority sessions are
  /// exempt.  Tests use a tiny cap to force the shed path.
  void set_max_outbox_bytes(size_t bytes) { max_outbox_bytes_ = bytes; }

  /// Shrinks SO_SNDBUF on accepted sockets (call before Start()); with a
  /// tiny kernel buffer a non-reading peer backs writes up into the
  /// outbox almost immediately, making slow-consumer tests deterministic.
  void set_send_buffer_bytes(int bytes) { send_buffer_bytes_ = bytes; }

  /// Default bound on the monitor_since replay history.
  static constexpr size_t kHistoryLimit = 256;

  /// Bound on the transact response cache (request-id dedup).  Retries
  /// arrive immediately after a heal, so a small window suffices.
  static constexpr size_t kTransactCacheLimit = 128;

  /// Default per-client outbox cap (bytes).
  static constexpr size_t kMaxOutboxBytes = 4u << 20;

  /// Bound on the final outbox drain during Stop() (milliseconds).
  static constexpr int kDrainDeadlineMs = 2000;

 private:
  struct MonitorSub {
    uint64_t db_id = 0;    // database monitor id
    bool with_txn = false; // append the txn-id to update notifications
  };
  struct Client {
    int fd = -1;
    JsonStreamSplitter splitter;
    std::string outbox;
    // monitor name (client-chosen id, dumped json) -> subscription
    std::map<std::string, MonitorSub> monitors;
    // Priority sessions ("set_priority") are serviced first each poll
    // cycle and exempt from the outbox cap, so monitor fan-out to slow
    // readers cannot starve a transact pipeline that opted in.
    int priority = 0;
    bool overflowed = false;  // outbox blew the cap; dropped next sweep
  };

  void ServiceLoop();
  void HandleDocument(Client& client, std::string_view text);
  JsonRpcMessage HandleRequest(Client& client, const JsonRpcMessage& request);
  Result<Json> DoMonitor(Client& client, const Json& params);
  Result<Json> DoMonitorSince(Client& client, const Json& params);
  Result<Json> DoMonitorCancel(Client& client, const Json& params);
  Result<Json> DoFetch(const Json& params);
  /// Shared monitor registration: validates the id and table/column spec,
  /// hooks the database, and returns the initial snapshot.
  Result<Json> RegisterMonitor(Client& client, const Json& params,
                               bool with_txn);
  void SendTo(Client& client, const JsonRpcMessage& message);
  void FlushOutbox(Client& client);
  void DropClient(size_t index);
  /// Bounded final flush of every non-empty outbox (Stop() drain), so
  /// monitor deltas and responses already queued are not truncated.
  void DrainOutboxes(int deadline_ms);

  std::unique_ptr<Database> db_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> slow_consumer_drops_{0};
  std::atomic<uint64_t> deadline_rejects_{0};
  size_t max_outbox_bytes_ = kMaxOutboxBytes;
  int send_buffer_bytes_ = 0;  // 0 = leave the kernel default
  std::vector<std::unique_ptr<Client>> clients_;
  // --- monitor_since session resumption (service-thread only) ---
  size_t history_limit_ = kHistoryLimit;
  int64_t txn_counter_ = 0;
  std::deque<std::pair<int64_t, Json>> history_;  // (txn-id, updates)
  uint64_t history_monitor_id_ = 0;
  /// Instance id minted per Start().  txn-ids are only comparable within
  /// one epoch: the counter restarts at 0 with every incarnation, so a
  /// resuming client's txn-id from a previous epoch must never be matched
  /// against this history.
  std::string epoch_;
  // --- transact dedup (service-thread only) ---
  std::map<std::string, JsonRpcMessage> transact_results_;  // id -> response
  std::deque<std::string> transact_order_;  // FIFO eviction of the above
  std::atomic<uint64_t> transacts_deduped_{0};
};

/// Serializes a table-updates delta in the wire form used by "update"
/// notifications: {table: {uuid: {"old": row?, "new": row?}}}.
Json TableUpdatesToJson(const DatabaseSchema& schema,
                        const TableUpdates& updates);

}  // namespace nerpa::ovsdb

#endif  // NERPA_OVSDB_SERVER_H_
