// The Fig. 3 apparatus: a conventional fragment-style OpenFlow controller
// vs. the unified declarative program, over a growing feature set.
//
// The paper's Fig. 3 plots OVN's controller code base and the number of
// OpenFlow program fragments scattered through it growing at the same rate
// across releases.  We reproduce the *mechanism*: a controller in the
// conventional style implements each network feature as imperative code
// that emits flow fragments (each distinct emission site tagged with a
// cookie), while the unified approach implements the same feature as a few
// Datalog rules in one program.  The bench (bench_fragment_growth) enables
// features one by one and reports, per step:
//   * fragment sites (distinct cookies)        — the "scattered" metric
//   * flows installed for a fixed workload
//   * lines of imperative emitter code (measured from this module)
//   * Datalog rules and lines for the same feature set
#ifndef NERPA_BASELINE_FRAGMENTS_H_
#define NERPA_BASELINE_FRAGMENTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "ofp/flow.h"

namespace nerpa::baseline {

/// The workload the features are instantiated over.
struct FragmentWorkload {
  int ports = 8;
  int vlans = 4;
  int macs_per_port = 4;
  int acl_rules = 8;
  int load_balancers = 2;
  int backends_per_lb = 3;
  int remote_chassis = 3;
  int external_routes = 6;
};

/// One network feature in the conventional controller.
struct FeatureInfo {
  const char* name;
  int imperative_loc;  // hand-counted LOC of the emitter (kept in sync by
                       // the fragments unit test against the .cc source)
  int datalog_rules;   // rules in UnifiedFeatureRules for this feature
};

/// The 12 features, in the order they "shipped".
const std::vector<FeatureInfo>& Features();

/// Absolute path of fragments.cc at build time; the unit test measures the
/// real emitter sizes from it to keep FeatureInfo::imperative_loc honest.
extern const char* const kFragmentsSourcePath;

/// A conventional controller: enabling feature `i` runs its emitter, which
/// scatters flow fragments (cookies) into the switch.
class FragmentController {
 public:
  FragmentController(ofp::FlowSwitch* flows, FragmentWorkload workload)
      : flows_(flows), workload_(workload) {}

  /// Enables features [0, count); re-runs all emitters from scratch.
  Status EnableFeatures(int count);

  /// Distinct emission sites (cookies) currently installed.
  size_t FragmentSites() const;
  size_t FlowCount() const { return flows_->FlowCount(); }

 private:
  // One emitter per feature; each emits flows from several code sites.
  void EmitL2Forwarding();
  void EmitVlanIsolation();
  void EmitAclIngress();
  void EmitPortMirroring();
  void EmitArpResponder();
  void EmitDhcpRelay();
  void EmitLoadBalancer();
  void EmitNat();
  void EmitSecurityGroups();
  void EmitQos();
  void EmitTunnelEncap();
  void EmitGateway();

  void Emit(int table, int priority, std::vector<ofp::OfMatch> match,
            std::vector<ofp::OfAction> actions, std::string cookie);

  ofp::FlowSwitch* flows_;
  FragmentWorkload workload_;
};

/// The unified-program counterpart: Datalog rules implementing features
/// [0, count), as one self-contained parseable program.
std::string UnifiedFeatureRules(int count);

}  // namespace nerpa::baseline

#endif  // NERPA_BASELINE_FRAGMENTS_H_
