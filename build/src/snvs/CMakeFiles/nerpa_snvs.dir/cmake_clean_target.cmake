file(REMOVE_RECURSE
  "libnerpa_snvs.a"
)
