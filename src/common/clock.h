// Timing and memory probes used by the benchmark harnesses.
#ifndef NERPA_COMMON_CLOCK_H_
#define NERPA_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace nerpa {

/// Monotonic nanoseconds since an arbitrary epoch.
inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-process CPU time (user+system) in nanoseconds; E4/E5 report CPU
/// ratios, matching the paper's "CPU cost" phrasing.
int64_t ProcessCpuNanos();

/// Resident set size in bytes (Linux /proc/self/statm); 0 if unavailable.
/// E5 reports RAM ratios against this.
int64_t CurrentRssBytes();

/// Simple stopwatch over the monotonic clock.
class Stopwatch {
 public:
  Stopwatch() : start_(MonotonicNanos()) {}
  void Reset() { start_ = MonotonicNanos(); }
  int64_t ElapsedNanos() const { return MonotonicNanos() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  int64_t start_;
};

}  // namespace nerpa

#endif  // NERPA_COMMON_CLOCK_H_
