# Empty dependencies file for nerpa_baseline.
# This may be replaced when dependencies are built.
