// The data-plane -> control-plane feedback loop (§4.2) in slow motion:
// every digest, control-plane transaction, and table write involved in MAC
// learning, including a station move handled by most-recent-wins.
//
//   $ ./build/examples/mac_learning
#include <cstdio>

#include "snvs/snvs.h"

using namespace nerpa;

namespace {

void DumpLearningState(snvs::SnvsStack& stack) {
  std::printf("    SMac (learn suppression):\n");
  for (const p4::TableEntry* entry : stack.device().GetTable("SMac")->Entries()) {
    std::printf("      %s\n", entry->ToString().c_str());
  }
  std::printf("    Dmac (unicast forwarding):\n");
  for (const p4::TableEntry* entry : stack.device().GetTable("Dmac")->Entries()) {
    std::printf("      %s\n", entry->ToString().c_str());
  }
  auto learns = stack.controller().engine().Dump("MacLearn");
  std::printf("    MacLearn input relation: %zu rows (digests never expire; "
              "most-recent seq wins)\n",
              learns.ok() ? learns->size() : 0);
}

}  // namespace

int main() {
  auto stack_result = snvs::BuildSnvsStack();
  if (!stack_result.ok()) {
    std::fprintf(stderr, "%s\n", stack_result.status().ToString().c_str());
    return 1;
  }
  snvs::SnvsStack& stack = **stack_result;
  (void)stack.AddPort("p1", 1, "access", 10);
  (void)stack.AddPort("p2", 2, "access", 10);
  (void)stack.AddPort("p3", 3, "access", 10);

  net::Mac a(0, 0, 0, 0, 0, 0xAA), b(0, 0, 0, 0, 0, 0xBB);
  net::Packet a_to_b = net::MakeEthernetFrame(b, a, 0x0800, {1});

  std::printf("1. A talks on port 1.  SMac misses -> the default action\n"
              "   raises a MacLearn digest; the controller turns it into an\n"
              "   input-relation insert and the rules derive SMac + Dmac\n"
              "   entries incrementally:\n");
  auto out = stack.InjectPacket(0, 1, a_to_b);
  if (!out.ok()) return 1;
  std::printf("   packet flooded to %zu ports (unknown destination)\n",
              out->size());
  DumpLearningState(stack);

  std::printf("\n2. The same frame again: SMac now hits (no digest), and\n"
              "   the destination is still unknown, so it floods again:\n");
  out = stack.InjectPacket(0, 1, a_to_b);
  if (!out.ok()) return 1;
  std::printf("   flooded to %zu ports, digests so far: %llu\n", out->size(),
              static_cast<unsigned long long>(
                  stack.controller().stats().digests));

  std::printf("\n3. A moves to port 3 and talks.  The (vlan, mac, port) key\n"
              "   misses SMac -> new digest -> higher seq wins -> both\n"
              "   entries migrate (watch the Forward argument change):\n");
  out = stack.InjectPacket(0, 3, a_to_b);
  if (!out.ok()) return 1;
  DumpLearningState(stack);

  std::printf("\n4. B replies to A: unicast straight to port 3:\n");
  out = stack.InjectPacket(
      0, 2, net::MakeEthernetFrame(a, b, 0x0800, {2}));
  if (!out.ok() || out->empty()) return 1;
  std::printf("   delivered to port %llu\n",
              static_cast<unsigned long long>((*out)[0].port));

  const auto& stats = stack.controller().stats();
  std::printf("\ntotals: %llu digests, %llu dlog transactions, %llu entry "
              "inserts, %llu entry deletes\n",
              static_cast<unsigned long long>(stats.digests),
              static_cast<unsigned long long>(stats.dlog_txns),
              static_cast<unsigned long long>(stats.entries_inserted),
              static_cast<unsigned long long>(stats.entries_deleted));
  return 0;
}
