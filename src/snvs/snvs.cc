#include "snvs/snvs.h"

#include <cassert>

#include "common/log.h"
#include "common/strings.h"
#include "nerpa/bindings.h"
#include "p4/text.h"

namespace nerpa::snvs {

namespace {
/// DurableStore sidecar name for the controller's engine checkpoint.
constexpr const char* kEngineCheckpointName = "controller";
}  // namespace

ovsdb::DatabaseSchema SnvsSchema() {
  using ovsdb::BaseType;
  using ovsdb::ColumnType;
  ovsdb::DatabaseSchema schema;
  schema.name = "snvs";
  schema.version = "1.0.0";

  ovsdb::TableSchema port;
  port.name = "Port";
  port.columns = {
      {"name", ColumnType::Scalar(BaseType::String()), false, true},
      {"port", ColumnType::Scalar(BaseType::Integer(0, 65535)), false, true},
      {"vlan_mode",
       ColumnType::Scalar(BaseType::StringEnum({"access", "trunk"})), false,
       true},
      {"tag", ColumnType::Scalar(BaseType::Integer(0, 4095)), false, true},
      {"trunks", ColumnType::Set(BaseType::Integer(0, 4095)), false, true},
  };
  port.indexes = {{"name"}, {"port"}};
  schema.tables.emplace("Port", std::move(port));

  ovsdb::TableSchema mirror;
  mirror.name = "Mirror";
  mirror.columns = {
      {"name", ColumnType::Scalar(BaseType::String()), false, true},
      {"src_port", ColumnType::Scalar(BaseType::Integer(0, 65535)), false,
       true},
      {"out_port", ColumnType::Scalar(BaseType::Integer(0, 65535)), false,
       true},
  };
  // One mirror per source port: the PortMirror data-plane table is keyed
  // by ingress port alone, so the management plane must enforce the
  // uniqueness (cross-plane constraint co-design).
  mirror.indexes = {{"name"}, {"src_port"}};
  schema.tables.emplace("Mirror", std::move(mirror));

  ovsdb::TableSchema acl;
  acl.name = "AclRule";
  acl.columns = {
      {"mac", ColumnType::Scalar(BaseType::Integer(0, 281474976710655LL)),
       false, true},
      {"vlan", ColumnType::Scalar(BaseType::Integer(0, 4095)), false, true},
      {"allow", ColumnType::Scalar(BaseType::Boolean()), false, true},
  };
  schema.tables.emplace("AclRule", std::move(acl));
  return schema;
}

// The data plane, in the textual P4 dialect (src/p4/text.h).  This is the
// artifact the paper's LOC table counts as "300 of P4"; ours is smaller
// because the dialect omits P4-16 architecture boilerplate.
const char* const kSnvsP4 = R"p4(
program snvs;

header ethernet {
  bit<48> dstAddr;
  bit<48> srcAddr;
  bit<16> etherType;
}
header vlan {
  bit<3> pcp;
  bit<1> dei;
  bit<12> vid;
  bit<16> etherType;
}
metadata {
  bit<12> vlan;
  bit<1> forwarded;
}

// Data-plane-to-control-plane notification for MAC learning (becomes a
// control-plane input relation via the generated bindings).
digest MacLearn {
  standard.ingress_port: bit<16>;
  meta.vlan: bit<12>;
  ethernet.srcAddr: bit<48>;
}

parser {
  state start {
    extract(ethernet);
    select (ethernet.etherType) {
      0x8100: parse_vlan;
      default: accept;
    }
  }
  state parse_vlan {
    extract(vlan);
    goto accept;
  }
}

action NoAction() { }
action Discard() { drop(); }
// Untagged packets on an access port adopt the configured vlan.
action SetAccessVlan(bit<12> vid) { meta.vlan = vid; }
// Tagged packets on a trunk keep their vid; the tag is stripped for the
// internal (untagged) representation and re-added at egress.
action UseTaggedVlan(bit<12> vid) {
  meta.vlan = vid;
  pop_vlan();
}
action AclDrop() { drop(); }
action AclAllow() { }
action Learn() { digest(MacLearn); }
action Forward(bit<16> port) {
  output(port);
  meta.forwarded = 1;
}
action Flood(bit<16> group) { multicast(group); }
action MirrorTo(bit<16> port) { clone(port); }
action EmitTagged(bit<12> vid) { push_vlan(vid); }
action EmitUntagged() { }

table InVlanUntagged {
  key = { standard.ingress_port: exact; }
  actions = { SetAccessVlan; }
  default_action = Discard;
  size = 65536;
}
table InVlanTagged {
  key = { standard.ingress_port: exact; vlan.vid: exact; }
  actions = { UseTaggedVlan; }
  default_action = Discard;
  size = 65536;
}
table PortMirror {
  key = { standard.ingress_port: exact; }
  actions = { MirrorTo; }
  default_action = NoAction;
  size = 65536;
}
table Acl {
  key = { meta.vlan: exact; ethernet.srcAddr: exact; }
  actions = { AclDrop; AclAllow; }
  default_action = NoAction;
  size = 65536;
}
table SMac {
  key = { meta.vlan: exact; ethernet.srcAddr: exact;
          standard.ingress_port: exact; }
  actions = { NoAction; }
  default_action = Learn;
  size = 65536;
}
table Dmac {
  key = { meta.vlan: exact; ethernet.dstAddr: exact; }
  actions = { Forward; }
  default_action = NoAction;
  size = 65536;
}
table FloodVlan {
  key = { meta.vlan: exact; }
  actions = { Flood; }
  default_action = Discard;
  size = 65536;
}
table OutVlan {
  key = { standard.egress_port: exact; meta.vlan: exact; }
  actions = { EmitTagged; EmitUntagged; }
  default_action = Discard;
  size = 65536;
}

ingress {
  if (valid(vlan)) {
    apply(InVlanTagged);
  } else {
    apply(InVlanUntagged);
  }
  apply(PortMirror);
  apply(Acl);
  apply(SMac);
  apply(Dmac);
  if (meta.forwarded == 0) {
    apply(FloodVlan);
  }
}
egress {
  apply(OutVlan);
}
deparser {
  emit(ethernet);
  emit(vlan);
}
)p4";

std::string SnvsP4Source() { return kSnvsP4; }

std::shared_ptr<const p4::P4Program> SnvsP4Program() {
  // Parse once; the program is immutable and shared.
  static const std::shared_ptr<const p4::P4Program> kProgram = [] {
    auto parsed = p4::ParseP4Text(kSnvsP4);
    if (!parsed.ok()) {
      std::fprintf(stderr, "snvs.p4: %s\n",
                   parsed.status().ToString().c_str());
      std::abort();
    }
    return std::move(parsed).value();
  }();
  return kProgram;
}

std::string SnvsRules() {
  return R"dl(
// ---------------------------------------------------------------------
// snvs control plane (hand-written rules; declarations are generated).
// ---------------------------------------------------------------------

// Multicast flood groups are programmed through this extra output
// relation; group id = vlan + 1 (group 0 means "no multicast").
output relation MulticastGroup(group: bit<16>, port: bit<16>)

// VLAN membership of each port (tagged = trunk membership).
relation PortVlan(port: bigint, vlan: bigint, tagged: bool)
PortVlan(p, t, false) :- Port(_, _, p, "access", t, _).
PortVlan(p, v, true) :- Port(_, _, p, "trunk", _, trunks), var v in trunks.

// Ingress VLAN admission.
InVlanUntagged(p as bit<16>, "SetAccessVlan", t as bit<12>) :-
    Port(_, _, p, "access", t, _).
InVlanTagged(p as bit<16>, v as bit<12>, "UseTaggedVlan", v as bit<12>) :-
    PortVlan(p, v, true).

// Per-VLAN flooding.
FloodVlan(v as bit<12>, "Flood", (v + 1) as bit<16>) :- PortVlan(_, v, _).
MulticastGroup((v + 1) as bit<16>, p as bit<16>) :- PortVlan(p, v, _).

// Egress tagging policy.
OutVlan(p as bit<16>, v as bit<12>, "EmitUntagged", 0) :-
    PortVlan(p, v, false).
OutVlan(p as bit<16>, v as bit<12>, "EmitTagged", v as bit<12>) :-
    PortVlan(p, v, true).

// ACLs on source MACs.
Acl(v as bit<12>, m as bit<48>, "AclDrop") :- AclRule(_, m, v, false).
Acl(v as bit<12>, m as bit<48>, "AclAllow") :- AclRule(_, m, v, true).

// SPAN port mirroring.
PortMirror(s as bit<16>, "MirrorTo", d as bit<16>) :- Mirror(_, _, s, d).

// MAC learning with most-recent-wins (seq is assigned by the controller).
relation MaxSeq(vlan: bit<12>, mac: bit<48>, s: bigint)
MaxSeq(v, m, s) :- MacLearn(_, v, m, seq), var s = max(seq) group_by (v, m).
relation BestLearn(vlan: bit<12>, mac: bit<48>, port: bit<16>)
BestLearn(v, m, p) :- MaxSeq(v, m, s), MacLearn(p, v, m, s).

// A learned (vlan, mac, port) suppresses further digests on that port and
// installs the unicast forwarding entry.
SMac(v, m, p, "NoAction") :- BestLearn(v, m, p).
Dmac(v, m, "Forward", p) :- BestLearn(v, m, p).
)dl";
}

Result<std::unique_ptr<SnvsStack>> BuildSnvsStack(const SnvsOptions& options) {
  if (options.with_device_column) {
    return InvalidArgument(
        "snvs rules are written for single-program deployments; see "
        "examples/multi_device.cc for device-column bindings");
  }
  if (options.devices < 1) {
    return InvalidArgument("need at least one device");
  }
  auto stack = std::unique_ptr<SnvsStack>(new SnvsStack());
  bool recovered = false;
  int64_t digest_seq = 0;
  if (!options.ha_dir.empty()) {
    NERPA_ASSIGN_OR_RETURN(stack->store_,
                           ha::DurableStore::Open(SnvsSchema(),
                                                  options.ha_dir,
                                                  options.io));
    stack->db_raw_ = &stack->store_->db();
    recovered = stack->store_->recovered();
    digest_seq = stack->store_->recovered_digest_seq();
  } else {
    stack->db_ = std::make_unique<ovsdb::Database>(SnvsSchema());
    stack->db_raw_ = stack->db_.get();
  }
  stack->p4_ = SnvsP4Program();

  BindingOptions binding_options;
  binding_options.with_device_column = false;
  binding_options.with_digest_seq = true;
  NERPA_ASSIGN_OR_RETURN(
      stack->bindings_,
      GenerateBindings(stack->db_raw_->schema(), *stack->p4_,
                       binding_options));

  stack->program_text_ = stack->bindings_.DeclsText() + SnvsRules();
  NERPA_ASSIGN_OR_RETURN(stack->program_,
                         dlog::Program::Parse(stack->program_text_));

  bool inject_faults = options.fault.write_fail_probability > 0 ||
                       options.fault.write_delay_nanos > 0;
  if (options.external_clients.empty()) {
    for (int i = 0; i < options.devices; ++i) {
      stack->switches_.push_back(std::make_unique<p4::Switch>(stack->p4_));
      if (inject_faults) {
        ha::FaultPolicy policy = options.fault;
        policy.seed += static_cast<uint64_t>(i);  // decorrelate devices
        stack->clients_.push_back(std::make_unique<ha::FaultyRuntimeClient>(
            stack->switches_.back().get(), policy));
      } else {
        stack->clients_.push_back(std::make_unique<p4::RuntimeClient>(
            stack->switches_.back().get()));
      }
      stack->client_ptrs_.push_back(stack->clients_.back().get());
    }
  } else {
    stack->client_ptrs_ = options.external_clients;
  }

  Controller::Options controller_options;
  controller_options.multicast_relation = "MulticastGroup";
  controller_options.resync_on_start = recovered || options.resync;
  controller_options.initial_digest_seq = digest_seq;
  if (recovered) {
    // Warm-start the control plane from the engine checkpoint sidecar when
    // one survived.  Any failure here (absent, corrupt, stale program) just
    // means recomputing the derivations — exactly the pre-checkpoint path.
    Result<std::string> blob =
        stack->store_->ReadEngineCheckpoint(kEngineCheckpointName);
    if (blob.ok()) {
      controller_options.engine_checkpoint = std::move(blob).value();
    } else if (blob.status().code() != StatusCode::kNotFound) {
      LOG_WARNING << "snvs: engine checkpoint unusable ("
                  << blob.status().ToString() << "); recomputing";
    }
  }
  controller_options.retry = options.retry;
  controller_options.breaker = options.breaker;
  controller_options.anti_entropy_interval_nanos =
      options.anti_entropy_interval_nanos;
  controller_options.commit_deadline_nanos = options.commit_deadline_nanos;
  controller_options.watchdog = options.watchdog;
  stack->controller_ = std::make_unique<Controller>(
      stack->db_raw_, stack->program_, stack->p4_, stack->bindings_,
      controller_options);
  for (size_t i = 0; i < stack->client_ptrs_.size(); ++i) {
    NERPA_RETURN_IF_ERROR(stack->controller_->AddDevice(
        StrFormat("sw%zu", i), stack->client_ptrs_[i]));
  }
  NERPA_RETURN_IF_ERROR(stack->controller_->Start());
  return stack;
}

ha::FaultyRuntimeClient* SnvsStack::faulty(size_t index) {
  if (index >= clients_.size()) return nullptr;
  return dynamic_cast<ha::FaultyRuntimeClient*>(clients_[index].get());
}

Status SnvsStack::Checkpoint() {
  if (store_ == nullptr) {
    return FailedPrecondition("stack was built without ha_dir");
  }
  NERPA_RETURN_IF_ERROR(store_->Checkpoint(controller_->digest_seq()));
  // Engine sidecar after the snapshot: a crash in between leaves an older
  // sidecar beside a newer snapshot, which restore reconciles (catch-up
  // diff for management rows; digest state is soft and re-learned).
  NERPA_ASSIGN_OR_RETURN(std::string blob, controller_->CheckpointEngine());
  return store_->WriteEngineCheckpoint(kEngineCheckpointName, blob);
}

Result<ovsdb::Uuid> SnvsStack::AddPort(const std::string& name, int64_t port,
                                       const std::string& vlan_mode,
                                       int64_t tag,
                                       const std::vector<int64_t>& trunks) {
  ovsdb::TxnBuilder txn(db_raw_);
  std::vector<ovsdb::Atom> trunk_atoms;
  for (int64_t vlan : trunks) trunk_atoms.emplace_back(vlan);
  txn.Insert("Port", {
                         {"name", ovsdb::Datum::String(name)},
                         {"port", ovsdb::Datum::Integer(port)},
                         {"vlan_mode", ovsdb::Datum::String(vlan_mode)},
                         {"tag", ovsdb::Datum::Integer(tag)},
                         {"trunks", ovsdb::Datum::Set(std::move(trunk_atoms))},
                     });
  NERPA_ASSIGN_OR_RETURN(std::vector<ovsdb::Uuid> inserted, txn.Commit());
  NERPA_RETURN_IF_ERROR(controller_->last_error());
  return inserted.at(0);
}

Status SnvsStack::DeletePort(const std::string& name) {
  ovsdb::TxnBuilder txn(db_raw_);
  txn.Delete("Port", {{"name", "==", ovsdb::Datum::String(name)}});
  NERPA_RETURN_IF_ERROR(txn.Commit().status());
  return controller_->last_error();
}

Result<ovsdb::Uuid> SnvsStack::AddMirror(const std::string& name,
                                         int64_t src_port, int64_t out_port) {
  ovsdb::TxnBuilder txn(db_raw_);
  txn.Insert("Mirror", {
                           {"name", ovsdb::Datum::String(name)},
                           {"src_port", ovsdb::Datum::Integer(src_port)},
                           {"out_port", ovsdb::Datum::Integer(out_port)},
                       });
  NERPA_ASSIGN_OR_RETURN(std::vector<ovsdb::Uuid> inserted, txn.Commit());
  NERPA_RETURN_IF_ERROR(controller_->last_error());
  return inserted.at(0);
}

Result<ovsdb::Uuid> SnvsStack::AddAclRule(int64_t mac, int64_t vlan,
                                          bool allow) {
  ovsdb::TxnBuilder txn(db_raw_);
  txn.Insert("AclRule", {
                            {"mac", ovsdb::Datum::Integer(mac)},
                            {"vlan", ovsdb::Datum::Integer(vlan)},
                            {"allow", ovsdb::Datum::Boolean(allow)},
                        });
  NERPA_ASSIGN_OR_RETURN(std::vector<ovsdb::Uuid> inserted, txn.Commit());
  NERPA_RETURN_IF_ERROR(controller_->last_error());
  return inserted.at(0);
}

Result<std::vector<p4::PacketOut>> SnvsStack::InjectPacket(
    size_t device, uint64_t port, const net::Packet& packet) {
  if (device >= switches_.size()) {
    return InvalidArgument(
        "InjectPacket targets an internally created device; drive external "
        "switches directly and call SyncDataPlaneNotifications()");
  }
  NERPA_ASSIGN_OR_RETURN(
      std::vector<p4::PacketOut> out,
      switches_[device]->ProcessPacket(p4::PacketIn{port, packet}));
  NERPA_RETURN_IF_ERROR(controller_->SyncDataPlaneNotifications());
  return out;
}

}  // namespace nerpa::snvs
