// Diagnostics for the full-stack static analyzer.
//
// Every finding carries a stable machine-readable code (NWxxx), a severity,
// the plane it concerns, and a source span (1-based line:column) into one of
// the two analyzable source texts: the combined control-plane program
// ("dlog") or the textual P4 pipeline ("p4").  Spans are 0 when the finding
// has no source anchor (e.g. a P4 program built directly as IR).
//
// Code ranges (the authoritative table lives in DESIGN.md):
//   NW0xx  frontend passthrough (parse / compile failures)
//   NW1xx  control-plane (Datalog) lints
//   NW2xx  cross-plane consistency (management <-> control <-> data)
//   NW3xx  data-plane (P4 IR) reachability
#ifndef NERPA_ANALYZE_DIAG_H_
#define NERPA_ANALYZE_DIAG_H_

#include <string>
#include <vector>

#include "common/json.h"

namespace nerpa::analyze {

enum class Severity { kWarning, kError };

const char* SeverityName(Severity severity);

struct Diagnostic {
  std::string code;      // "NW101"
  Severity severity = Severity::kError;
  std::string plane;     // "dlog", "cross-plane", or "p4"
  std::string message;
  std::string unit;      // span target: "dlog", "p4", or "" (no span)
  int line = 0;          // 1-based; 0 = no source location
  int col = 0;

  Json ToJson() const;
};

/// Orders by unit, then line:col, then code — stable presentation order.
void SortDiagnostics(std::vector<Diagnostic>& diagnostics);

/// One human-readable block per diagnostic:
///
///   <rules>:12:7: warning: NW102 relation 'Foo' is never read
///      12 | relation Foo(x: bigint)
///         |       ^
///
/// `dlog_source` / `p4_source` supply the caret snippets (empty = no
/// snippet); `dlog_name` / `p4_name` are the display file names.
std::string RenderDiagnostic(const Diagnostic& diagnostic,
                             std::string_view dlog_source,
                             std::string_view p4_source,
                             std::string_view dlog_name,
                             std::string_view p4_name);

/// The caret snippet alone ("   12 | ...\n      |   ^\n"); empty when the
/// span does not resolve into `source`.
std::string CaretSnippet(std::string_view source, int line, int col);

}  // namespace nerpa::analyze

#endif  // NERPA_ANALYZE_DIAG_H_
