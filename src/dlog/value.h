// Runtime values for the incremental Datalog engine.
//
// DDlog's value universe (booleans, integers, bit-vectors, strings, and
// structured data) is mirrored here.  Strings and tuples are hash-consed
// into a process-wide intern pool, so a Value is a 16-byte tagged word:
// copies are trivial, equality is (almost always) a pointer compare, and
// the hash of any payload is computed once at intern time.  Rows memoize
// their hash so arrangement probes never re-walk payloads.
#ifndef NERPA_DLOG_VALUE_H_
#define NERPA_DLOG_VALUE_H_

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/hash.h"

namespace nerpa::dlog {

class Value;

/// A tuple/vector payload.
using ValueVec = std::vector<Value>;

namespace internal {

/// A hash-consed string payload: the text plus its content hash, computed
/// once when the node is interned.
struct InternedString {
  std::string text;
  size_t hash;
};

/// A hash-consed tuple payload.
struct InternedTuple {
  ValueVec elems;
  size_t hash;
};

constexpr uint64_t kHashGolden = 0x9e3779b97f4a7c15ULL;

/// boost-style combine over a raw, already-computed hash.
inline void MixRawHash(size_t& seed, size_t h) {
  seed ^= h + kHashGolden + (seed << 6) + (seed >> 2);
}

/// splitmix64 finalizer: a strong 64-bit mix in a handful of ALU ops,
/// much cheaper than byte-wise FNV for fixed-width scalar payloads.
inline uint64_t MixBits(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace internal

/// Ablation/testing switch: when disabled, String()/Tuple() still allocate
/// pool-owned nodes with cached hashes but skip deduplication, so every
/// construction yields a distinct node (the pre-interning allocation
/// behaviour).  Values built under either mode compare and hash
/// identically — equality falls back to content comparison when the node
/// pointers differ.  Thread-safe; affects subsequently created values only.
void SetValueInterning(bool enabled);
bool ValueInterningEnabled();

/// Intern pool introspection (sizes feed Engine::Stats and the benches).
struct InternPoolStats {
  size_t strings = 0;       // distinct interned strings
  size_t tuples = 0;        // distinct interned tuples
  size_t string_bytes = 0;  // sum of interned string payload bytes
  size_t tuple_bytes = 0;   // sum of interned tuple payload bytes
  uint64_t hits = 0;        // constructions served by an existing node
  uint64_t misses = 0;      // constructions that allocated a node
};
InternPoolStats GetInternPoolStats();

/// One Datalog runtime value: bool, signed 64-bit int, bit<N> (stored
/// zero-extended in a u64), string, or a vector/tuple of values.  Trivially
/// copyable; string/tuple payloads live in the intern pool for the life of
/// the process (hash-consing never evicts).
class Value {
 public:
  Value() : tag_(Tag::kBool), bits_(0) {}
  static Value Bool(bool v) { return Value(Tag::kBool, v ? 1 : 0); }
  static Value Int(int64_t v) {
    return Value(Tag::kInt, static_cast<uint64_t>(v));
  }
  static Value Bit(uint64_t v) { return Value(Tag::kBit, v); }
  static Value String(std::string v);
  static Value Tuple(ValueVec elems);

  bool is_bool() const { return tag_ == Tag::kBool; }
  bool is_int() const { return tag_ == Tag::kInt; }
  bool is_bit() const { return tag_ == Tag::kBit; }
  bool is_string() const { return tag_ == Tag::kString; }
  bool is_tuple() const { return tag_ == Tag::kTuple; }

  bool as_bool() const { return bits_ != 0; }
  int64_t as_int() const { return static_cast<int64_t>(bits_); }
  uint64_t as_bit() const { return bits_; }
  const std::string& as_string() const { return str_->text; }
  const ValueVec& as_tuple() const { return tup_->elems; }

  /// Numeric view: int value or bit value as signed (for mixed arithmetic
  /// the type checker has already unified the operand types).
  int64_t NumericAsInt() const {
    return is_int() ? as_int() : static_cast<int64_t>(bits_);
  }

  /// O(1): scalars mix tag and payload; strings/tuples return the hash
  /// cached in their interned node.  Inline because arrangement probes and
  /// z-set folds hash millions of values per commit.
  size_t Hash() const {
    switch (tag_) {
      case Tag::kString:
        return str_->hash;
      case Tag::kTuple:
        return tup_->hash;
      default:
        return internal::MixBits(
            bits_ ^ (static_cast<uint8_t>(tag_) * internal::kHashGolden));
    }
  }
  bool operator==(const Value& o) const {
    if (tag_ != o.tag_) return false;
    switch (tag_) {
      case Tag::kString:
        // Interned: equal strings share one node, so this is a pointer
        // compare.  The deep fallback keeps mixed interned/uninterned
        // values correct.
        return str_ == o.str_ || StringEqualSlow(o);
      case Tag::kTuple:
        return tup_ == o.tup_ || TupleEqualSlow(o);
      default:
        return bits_ == o.bits_;
    }
  }
  bool operator!=(const Value& o) const { return !(*this == o); }
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  /// Three-way comparison (<0, 0, >0) in the same total order as
  /// operator<; lets sorts pay one comparison per element instead of two.
  /// Scalar cases stay inline (the output sort is compare-bound); payload
  /// comparisons go out of line.
  int Compare(const Value& o) const {
    if (tag_ != o.tag_) {
      return static_cast<int>(tag_) < static_cast<int>(o.tag_) ? -1 : 1;
    }
    switch (tag_) {
      case Tag::kBool:
      case Tag::kBit:
        return bits_ < o.bits_ ? -1 : (o.bits_ < bits_ ? 1 : 0);
      case Tag::kInt:
        return as_int() < o.as_int() ? -1 : (o.as_int() < as_int() ? 1 : 0);
      default:
        return ComparePayloadSlow(o);
    }
  }

  /// Debug form: true, 42, "s", (a, b).
  std::string ToString() const;

 private:
  enum class Tag : uint8_t { kBool = 0, kInt, kBit, kString, kTuple };

  bool StringEqualSlow(const Value& o) const;
  bool TupleEqualSlow(const Value& o) const;
  int ComparePayloadSlow(const Value& o) const;

  Value(Tag tag, uint64_t bits) : tag_(tag), bits_(bits) {}
  Value(Tag tag, const internal::InternedString* s) : tag_(tag), str_(s) {}
  Value(Tag tag, const internal::InternedTuple* t) : tag_(tag), tup_(t) {}

  Tag tag_;
  union {
    uint64_t bits_;
    const internal::InternedString* str_;
    const internal::InternedTuple* tup_;
  };
};

static_assert(sizeof(Value) == 16, "Value must stay a small tagged word");
static_assert(std::is_trivially_copyable_v<Value>,
              "Value copies must be memcpy-able");

/// Content hash over a value range; identical to Row::Hash() for the same
/// values (the transparent-lookup contract).
inline size_t HashValueRange(const Value* data, size_t size) {
  size_t seed = internal::kHashGolden ^ size;
  for (size_t i = 0; i < size; ++i) internal::MixRawHash(seed, data[i].Hash());
  return seed == 0 ? 1 : seed;  // 0 is Row's "not yet computed" sentinel
}

/// A relation row: a flat run of values with a memoized content hash, so
/// z-set and arrangement probes hash each row at most once per mutation.
/// Values are trivially copyable, so Row keeps up to kInline of them in a
/// small inline buffer: typical rows copy by memcpy with no heap traffic,
/// and hash-map nodes keyed by Row hold their values in the node itself.
class Row {
 public:
  using const_iterator = const Value*;
  static constexpr uint32_t kInline = 3;

  Row() = default;
  Row(std::initializer_list<Value> elems) {
    Assign(elems.begin(), elems.size());
  }
  explicit Row(const ValueVec& elems) { Assign(elems.data(), elems.size()); }
  Row(const Value* data, size_t n) { Assign(data, n); }

  Row(const Row& o) {
    Assign(o.data_, o.size_);
    hash_ = o.hash_;
  }
  Row(Row&& o) noexcept { MoveFrom(o); }
  Row& operator=(const Row& o) {
    if (this != &o) {
      Assign(o.data_, o.size_);
      hash_ = o.hash_;
    }
    return *this;
  }
  Row& operator=(Row&& o) noexcept {
    if (this != &o) {
      ReleaseHeap();
      MoveFrom(o);
    }
    return *this;
  }
  ~Row() { ReleaseHeap(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Value& operator[](size_t i) const { return data_[i]; }
  const Value& back() const { return data_[size_ - 1]; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }
  std::span<const Value> span() const { return {data_, size_}; }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }
  void push_back(Value v) {
    if (size_ == capacity_) Grow(size_ + 1);
    data_[size_++] = v;
    hash_ = 0;
  }
  void clear() {
    size_ = 0;
    hash_ = 0;
  }

  /// Memoized content hash (computed on first use, invalidated by
  /// mutation).  Equal rows hash equal regardless of interning mode.
  size_t Hash() const {
    if (hash_ == 0) hash_ = HashValueRange(data_, size_);
    return hash_;
  }

  bool operator==(const Row& o) const {
    if (size_ != o.size_) return false;
    if (hash_ != 0 && o.hash_ != 0 && hash_ != o.hash_) return false;
    for (size_t i = 0; i < size_; ++i) {
      if (!(data_[i] == o.data_[i])) return false;
    }
    return true;
  }
  bool operator!=(const Row& o) const { return !(*this == o); }
  bool operator<(const Row& o) const {
    size_t n = size_ < o.size_ ? size_ : o.size_;
    for (size_t i = 0; i < n; ++i) {
      int c = data_[i].Compare(o.data_[i]);
      if (c != 0) return c < 0;
    }
    return size_ < o.size_;
  }

 private:
  void Assign(const Value* src, size_t n) {
    if (n > capacity_) Grow(n);
    if (n != 0) std::memcpy(data_, src, n * sizeof(Value));
    size_ = static_cast<uint32_t>(n);
    hash_ = 0;
  }
  void MoveFrom(Row& o) noexcept {
    if (o.data_ != o.inline_) {
      data_ = o.data_;
      capacity_ = o.capacity_;
      o.data_ = o.inline_;
      o.capacity_ = kInline;
    } else if (o.size_ != 0) {
      std::memcpy(inline_, o.inline_, o.size_ * sizeof(Value));
    }
    size_ = o.size_;
    hash_ = o.hash_;
    o.size_ = 0;
    o.hash_ = 0;
  }
  void ReleaseHeap() {
    if (data_ != inline_) {
      ::operator delete(data_);
      data_ = inline_;
      capacity_ = kInline;
    }
  }
  void Grow(size_t need);

  Value* data_ = inline_;
  uint32_t size_ = 0;
  uint32_t capacity_ = kInline;
  mutable size_t hash_ = 0;  // 0 = not yet computed (never a valid hash)
  Value inline_[kInline];
};

/// A borrowed key: a contiguous run of values (e.g. a probe key assembled
/// in a scratch buffer) hash/equality-compatible with Row.
using RowView = std::span<const Value>;

/// Transparent hash/equality so arrangement maps can be probed with a
/// RowView without materializing a key Row per lookup.
struct RowHash {
  using is_transparent = void;
  size_t operator()(const Row& row) const { return row.Hash(); }
  size_t operator()(RowView view) const {
    return HashValueRange(view.data(), view.size());
  }
};

struct RowEq {
  using is_transparent = void;
  bool operator()(const Row& a, const Row& b) const { return a == b; }
  bool operator()(const Row& a, RowView b) const {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  bool operator()(RowView a, const Row& b) const {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  bool operator()(RowView a, RowView b) const {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
};

std::string RowToString(const Row& row);

}  // namespace nerpa::dlog

template <>
struct std::hash<nerpa::dlog::Value> {
  size_t operator()(const nerpa::dlog::Value& v) const noexcept {
    return v.Hash();
  }
};

template <>
struct std::hash<nerpa::dlog::Row> {
  size_t operator()(const nerpa::dlog::Row& r) const noexcept {
    return r.Hash();
  }
};

#endif  // NERPA_DLOG_VALUE_H_
