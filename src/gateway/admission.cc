#include "gateway/admission.h"

#include <algorithm>

namespace nerpa::gateway {

AdmissionController::AdmissionController(double rate_per_sec, double burst,
                                         size_t max_inflight)
    : rate_per_sec_(rate_per_sec),
      burst_(burst),
      max_inflight_(max_inflight),
      tokens_(burst) {}

bool AdmissionController::TryAdmit(int64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (max_inflight_ > 0 && inflight_ >= max_inflight_) {
    ++shed_;
    return false;
  }
  if (rate_per_sec_ > 0) {
    if (last_refill_ns_ == 0) last_refill_ns_ = now_ns;
    if (now_ns > last_refill_ns_) {
      double elapsed_sec =
          static_cast<double>(now_ns - last_refill_ns_) * 1e-9;
      tokens_ = std::min(burst_, tokens_ + elapsed_sec * rate_per_sec_);
      last_refill_ns_ = now_ns;
    }
    if (tokens_ < 1.0) {
      ++shed_;
      return false;
    }
    tokens_ -= 1.0;
  }
  ++inflight_;
  ++admitted_;
  return true;
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ > 0) --inflight_;
}

uint64_t AdmissionController::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

uint64_t AdmissionController::shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

size_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

}  // namespace nerpa::gateway
