// E-HA — crash recovery and data-plane resynchronization costs (src/ha).
//
// The paper leaves management/control-plane fault tolerance open (§5);
// this bench characterizes the single-node recovery story along the two
// axes that matter operationally:
//
//   1. Cold restore: time to rebuild the management plane from a snapshot
//      (plus the full stack on top of it) as the snapshot grows.
//   2. Reconciliation: data-plane writes issued by resynchronization as a
//      function of how far the device diverged while the controller was
//      down — 0 writes when converged, proportional to the diff otherwise
//      (never "wipe and reinstall everything").
//
// Results are printed as tables and written to BENCH_recovery.json for
// machine consumption.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "ha/durable.h"
#include "snvs/snvs.h"

namespace nerpa {
namespace {

using bench::Banner;
using bench::Table;

std::string FreshDir(const std::string& name) {
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/nerpa_bench_recovery_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Status AddPorts(snvs::SnvsStack& stack, int count) {
  for (int i = 0; i < count; ++i) {
    NERPA_RETURN_IF_ERROR(stack.AddPort(StrFormat("p%d", i), i, "access",
                                        (i % 1024) + 1)
                              .status());
  }
  return Status::Ok();
}

constexpr const char* kTables[] = {"InVlanUntagged", "InVlanTagged",
                                   "PortMirror",     "Acl",
                                   "SMac",           "Dmac",
                                   "FloodVlan",      "OutVlan"};

/// Experiment 1: snapshot size vs. time to restore.
Result<Json> ColdRestore() {
  Banner("E-HA.1", "cold restore: snapshot size vs. recovery time");
  Table table({"ports", "snapshot bytes", "db restore", "full stack"});
  Json::Array rows;
  for (int ports : {100, 500, 1000, 2000}) {
    std::string dir = FreshDir(StrFormat("cold_%d", ports));
    {
      snvs::SnvsOptions options;
      options.ha_dir = dir;
      NERPA_ASSIGN_OR_RETURN(auto stack, snvs::BuildSnvsStack(options));
      NERPA_RETURN_IF_ERROR(AddPorts(*stack, ports));
      NERPA_RETURN_IF_ERROR(stack->Checkpoint());
    }
    auto snapshot_bytes = static_cast<int64_t>(
        std::filesystem::file_size(dir + "/snapshot.json"));

    // Database-only restore (snapshot apply + WAL replay).
    Stopwatch db_watch;
    NERPA_RETURN_IF_ERROR(
        ha::RecoverDatabase(snvs::SnvsSchema(), dir).status());
    double db_seconds = db_watch.ElapsedSeconds();

    // Full stack rebuild: restore + engine re-derivation + device resync.
    Stopwatch stack_watch;
    snvs::SnvsOptions options;
    options.ha_dir = dir;
    NERPA_ASSIGN_OR_RETURN(auto stack, snvs::BuildSnvsStack(options));
    double stack_seconds = stack_watch.ElapsedSeconds();

    table.AddRow({StrFormat("%d", ports), StrFormat("%lld", snapshot_bytes),
                  bench::Ms(db_seconds), bench::Ms(stack_seconds)});
    rows.push_back(Json(Json::Object{
        {"ports", Json(ports)},
        {"snapshot_bytes", Json(snapshot_bytes)},
        {"db_restore_seconds", Json(db_seconds)},
        {"stack_rebuild_seconds", Json(stack_seconds)},
    }));
    std::filesystem::remove_all(dir);
  }
  table.Print();
  std::printf("\n");
  return Json(std::move(rows));
}

/// Experiment 2: resynchronization writes vs. divergence.
Result<Json> Reconciliation() {
  Banner("E-HA.2",
         "resynchronization: device divergence vs. repair writes");
  constexpr int kPorts = 200;
  Table table({"divergence", "entries lost", "resync writes", "time"});
  Json::Array rows;
  for (double fraction : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    std::string dir = FreshDir(StrFormat("resync_%d",
                                         static_cast<int>(fraction * 100)));
    auto program = snvs::SnvsP4Program();
    auto sw = std::make_unique<p4::Switch>(program);
    auto client = std::make_unique<p4::RuntimeClient>(sw.get());
    {
      snvs::SnvsOptions options;
      options.ha_dir = dir;
      options.external_clients = {client.get()};
      NERPA_ASSIGN_OR_RETURN(auto stack, snvs::BuildSnvsStack(options));
      NERPA_RETURN_IF_ERROR(AddPorts(*stack, kPorts));
    }  // controller crashes; the device keeps its tables

    // The device loses `fraction` of its entries while unmanaged.
    int64_t lost = 0;
    for (const char* name : kTables) {
      auto entries = client->ReadTable(name);
      NERPA_RETURN_IF_ERROR(entries.status());
      auto keep_boundary =
          static_cast<size_t>((1.0 - fraction) * entries->size());
      for (size_t i = keep_boundary; i < entries->size(); ++i) {
        NERPA_RETURN_IF_ERROR(client->Delete((*entries)[i]));
        ++lost;
      }
    }
    uint64_t writes_before = client->write_count();

    Stopwatch watch;
    snvs::SnvsOptions options;
    options.ha_dir = dir;
    options.external_clients = {client.get()};
    NERPA_ASSIGN_OR_RETURN(auto stack, snvs::BuildSnvsStack(options));
    double seconds = watch.ElapsedSeconds();

    uint64_t repair_writes = client->write_count() - writes_before;
    const auto& stats = stack->controller().stats();
    table.AddRow({StrFormat("%.0f%%", fraction * 100),
                  StrFormat("%lld", lost),
                  StrFormat("%llu", repair_writes), bench::Ms(seconds)});
    rows.push_back(Json(Json::Object{
        {"divergence_fraction", Json(fraction)},
        {"entries_lost", Json(lost)},
        {"resync_writes", Json(static_cast<int64_t>(repair_writes))},
        {"resync_inserted", Json(static_cast<int64_t>(stats.resync_inserted))},
        {"resync_deleted", Json(static_cast<int64_t>(stats.resync_deleted))},
        {"resync_modified", Json(static_cast<int64_t>(stats.resync_modified))},
        {"resync_seconds", Json(seconds)},
    }));
    std::filesystem::remove_all(dir);
  }
  table.Print();
  std::printf(
      "\nshape: writes track the diff (0%% divergence => 0 writes), not the "
      "table size.\n\n");
  return Json(std::move(rows));
}

/// Experiment 3 (--corrupt): what the corruption defenses cost.  Two
/// deltas against the clean restore path: CRC verification of every
/// framed WAL record (vs. replaying the same records unframed), and
/// previous-generation snapshot fallback (vs. decoding the current
/// snapshot directly).
Result<Json> CorruptRecovery() {
  Banner("E-HA.3", "corruption: checksum + snapshot-fallback overhead");
  Table table({"ports", "framed", "unframed", "crc delta", "fallback",
               "fallback delta"});
  Json::Array rows;
  for (int ports : {500, 2000}) {
    std::string dir = FreshDir(StrFormat("corrupt_%d", ports));
    auto add_range = [](snvs::SnvsStack& stack, int from, int to) -> Status {
      for (int i = from; i < to; ++i) {
        NERPA_RETURN_IF_ERROR(stack.AddPort(StrFormat("p%d", i), i, "access",
                                            (i % 1024) + 1)
                                  .status());
      }
      return Status::Ok();
    };
    {
      snvs::SnvsOptions options;
      options.ha_dir = dir;
      NERPA_ASSIGN_OR_RETURN(auto stack, snvs::BuildSnvsStack(options));
      // Two checkpoint generations (snapshot.json.1 + wal.jsonl.1 must
      // reproduce snapshot.json for the fallback leg) plus a live WAL
      // segment so the replay hot path is actually exercised.
      NERPA_RETURN_IF_ERROR(add_range(*stack, 0, ports / 2));
      NERPA_RETURN_IF_ERROR(stack->Checkpoint());
      NERPA_RETURN_IF_ERROR(add_range(*stack, ports / 2, ports));
      NERPA_RETURN_IF_ERROR(stack->Checkpoint());
      NERPA_RETURN_IF_ERROR(add_range(*stack, ports, ports + ports / 2));
    }
    std::string wal_path = dir + "/wal.jsonl";
    std::string snap_path = dir + "/snapshot.json";

    Stopwatch framed_watch;
    NERPA_RETURN_IF_ERROR(
        ha::RecoverDatabase(snvs::SnvsSchema(), dir).status());
    double framed_seconds = framed_watch.ElapsedSeconds();

    // Same records as legacy unframed lines: the delta is pure CRC cost.
    std::string framed_wal;
    {
      std::ifstream in(wal_path, std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      framed_wal = std::move(buffer).str();
    }
    std::string unframed_wal;
    for (size_t pos = 0; pos < framed_wal.size();) {
      size_t end = framed_wal.find('\n', pos);
      if (end == std::string::npos) end = framed_wal.size();
      std::string_view line(framed_wal.data() + pos, end - pos);
      size_t space = line.find(' ');
      if (!line.empty() && line[0] != '[' && line[0] != '{' &&
          space != std::string_view::npos) {
        line.remove_prefix(space + 1);
      }
      unframed_wal.append(line);
      unframed_wal.push_back('\n');
      pos = end + 1;
    }
    {
      std::ofstream out(wal_path, std::ios::trunc | std::ios::binary);
      out << unframed_wal;
    }
    Stopwatch unframed_watch;
    NERPA_RETURN_IF_ERROR(
        ha::RecoverDatabase(snvs::SnvsSchema(), dir).status());
    double unframed_seconds = unframed_watch.ElapsedSeconds();
    {
      std::ofstream out(wal_path, std::ios::trunc | std::ios::binary);
      out << framed_wal;
    }

    // Flip one byte mid-snapshot: the trailer checksum rejects it and
    // recovery falls back to snapshot.json.1 + wal.jsonl.1 + wal.jsonl.
    {
      std::ifstream in(snap_path, std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      std::string snapshot = std::move(buffer).str();
      snapshot[snapshot.size() / 2] =
          snapshot[snapshot.size() / 2] == 'x' ? 'y' : 'x';
      std::ofstream out(snap_path, std::ios::trunc | std::ios::binary);
      out << snapshot;
    }
    Stopwatch fallback_watch;
    NERPA_ASSIGN_OR_RETURN(
        auto store, ha::DurableStore::Open(snvs::SnvsSchema(), dir));
    double fallback_seconds = fallback_watch.ElapsedSeconds();
    if (store->stats().snapshot_fallbacks != 1) {
      return Internal("corrupt snapshot did not trigger fallback recovery");
    }

    table.AddRow({StrFormat("%d", ports), bench::Ms(framed_seconds),
                  bench::Ms(unframed_seconds),
                  bench::Ms(framed_seconds - unframed_seconds),
                  bench::Ms(fallback_seconds),
                  bench::Ms(fallback_seconds - framed_seconds)});
    rows.push_back(Json(Json::Object{
        {"ports", Json(ports)},
        {"framed_restore_seconds", Json(framed_seconds)},
        {"unframed_restore_seconds", Json(unframed_seconds)},
        {"crc_verify_delta_seconds", Json(framed_seconds - unframed_seconds)},
        {"fallback_restore_seconds", Json(fallback_seconds)},
        {"fallback_delta_seconds", Json(fallback_seconds - framed_seconds)},
    }));
    std::filesystem::remove_all(dir);
  }
  table.Print();
  std::printf(
      "\nshape: both defenses cost a bounded additive delta, not a "
      "multiplier on restore time.\n\n");
  return Json(std::move(rows));
}

int Run(bool corrupt) {
  auto cold = ColdRestore();
  if (!cold.ok()) {
    std::fprintf(stderr, "cold restore: %s\n",
                 cold.status().ToString().c_str());
    return 1;
  }
  auto resync = Reconciliation();
  if (!resync.ok()) {
    std::fprintf(stderr, "reconciliation: %s\n",
                 resync.status().ToString().c_str());
    return 1;
  }
  Json doc(Json::Object{{"bench", Json("recovery")},
                        {"cold_restore", *cold},
                        {"reconciliation", *resync}});
  if (corrupt) {
    auto corrupted = CorruptRecovery();
    if (!corrupted.ok()) {
      std::fprintf(stderr, "corrupt recovery: %s\n",
                   corrupted.status().ToString().c_str());
      return 1;
    }
    doc.as_object().emplace("corrupt_recovery", *corrupted);
  }
  std::ofstream out("BENCH_recovery.json");
  out << doc.Dump(2) << "\n";
  std::printf("wrote BENCH_recovery.json\n");
  return out ? 0 : 1;
}

}  // namespace
}  // namespace nerpa

int main(int argc, char** argv) {
  bool corrupt = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--corrupt") corrupt = true;
  }
  return nerpa::Run(corrupt);
}
