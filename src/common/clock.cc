#include "common/clock.h"

#include <ctime>
#include <fstream>
#include <string>

#include <unistd.h>

namespace nerpa {

int64_t ProcessCpuNanos() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000000LL + ts.tv_nsec;
}

int64_t CurrentRssBytes() {
  std::ifstream statm("/proc/self/statm");
  if (!statm) return 0;
  long long total = 0, resident = 0;
  statm >> total >> resident;
  long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) page = 4096;
  return resident * page;
}

}  // namespace nerpa
