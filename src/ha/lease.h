// Leader leases for hot-standby controller replication.
//
// An active/standby controller pair elects its leader through a singleton
// `Leader_Lease` row in the shared (durable) OVSDB: whoever holds an
// unexpired lease is the leader; the lease epoch doubles as the fencing
// token every data-plane and management-plane write carries (see
// ovsdb::Database's assert_fence operation and p4::RuntimeClient's fence
// token).  The protocol is the classic lease + fencing-token design:
//
//   * Acquire: allowed only when the record is absent, expired, or already
//     ours.  Acquisition by a *new* holder (or re-acquisition of an expired
//     lease) bumps the epoch; the bump is what fences out the previous
//     leader everywhere downstream.
//   * Renew: extends expiry only — the epoch never changes while the same
//     holder stays leader, so renewal storms cannot invalidate in-flight
//     writes.
//   * Every mutation is a CAS transaction: a "wait" operation asserts the
//     exact (epoch, expiry_nanos) pair the caller last read, then an
//     "update" installs the new record.  Two racing acquirers serialize
//     through the database; the loser's wait fails and it re-reads.
//
// Expiry is compared against an injectable clock (defaults to
// MonotonicNanos) so tests and the chaos harness can freeze, skew, or jump
// time.  The epoch is monotone even across a corrupt or deleted record:
// the manager remembers the largest epoch it ever observed and always
// acquires above it.
#ifndef NERPA_HA_LEASE_H_
#define NERPA_HA_LEASE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "ovsdb/database.h"

namespace nerpa::ha {

/// A decoded Leader_Lease record.
struct Lease {
  int64_t epoch = 0;
  std::string holder;
  int64_t expiry_nanos = 0;

  bool expired(int64_t now_nanos) const { return now_nanos >= expiry_nanos; }
};

/// One replica's view of the lease.  Not thread-safe; drive it from the
/// replica's control loop.
class LeaseManager {
 public:
  struct Options {
    std::string holder_id;                 // unique per replica
    int64_t ttl_nanos = 500'000'000;       // lease validity per renewal
    std::function<int64_t()> clock;        // defaults to MonotonicNanos
  };

  LeaseManager(ovsdb::Database* db, Options options);

  /// Decodes the current lease row; nullopt when absent.  A malformed row
  /// (wrong arity, lost columns) decodes as epoch 0 / expired — i.e. free
  /// to take, but still subject to the monotone-epoch floor.
  std::optional<Lease> Read() const;

  /// Attempts to become (or stay) leader.  Returns the held epoch on
  /// success.  While we already hold an unexpired lease this renews it
  /// (same epoch); otherwise it CAS-acquires with a bumped epoch.  Fails
  /// with kFailedPrecondition when another holder's lease is still live or
  /// when the CAS loses a race.
  Result<int64_t> TryAcquire();

  /// Extends the expiry of a lease we hold, keeping the epoch.  Fails with
  /// kFailedPrecondition (and forgets leadership) when the lease is no
  /// longer ours or already expired under our clock.
  Status Renew();

  /// Gives up a held lease by expiring it in place (no epoch change); the
  /// standby can then acquire immediately instead of waiting out the TTL.
  /// No-op when not holding.
  Status Release();

  /// True while the last Acquire/Renew succeeded and has not been revoked.
  /// (A stale true is possible until the next Renew fails — that window is
  /// exactly what downstream fencing covers.)
  bool holding() const { return holding_; }

  /// The epoch we hold (0 when not leader).
  int64_t epoch() const { return holding_ ? held_epoch_ : 0; }

  /// Largest epoch ever observed in the table (monotone floor for bumps).
  int64_t last_observed_epoch() const { return last_observed_epoch_; }

  const std::string& holder_id() const { return options_.holder_id; }
  int64_t ttl_nanos() const { return options_.ttl_nanos; }
  int64_t now() const { return options_.clock(); }

 private:
  /// CAS: wait-for (expected epoch/expiry, or absence) then install `next`.
  Status CasInstall(const std::optional<Lease>& expected, const Lease& next);

  ovsdb::Database* db_;
  Options options_;
  bool holding_ = false;
  int64_t held_epoch_ = 0;
  int64_t last_observed_epoch_ = 0;
};

/// Failover policy pump for one replica: Tick() renews while leading and
/// tries to acquire while following, invoking the callbacks on role edges.
/// Deterministic — no threads, no sleeps; the caller owns the cadence (the
/// HA pair's control loop, a test, or the failover bench).
class LeaseCoordinator {
 public:
  struct Callbacks {
    /// Became leader at `epoch`.  Return false to refuse leadership (e.g.
    /// promotion failed) — the coordinator releases the lease again.
    std::function<bool(int64_t epoch)> on_acquire;
    /// Lost the lease (expired, revoked, or released).
    std::function<void()> on_lose;
  };

  LeaseCoordinator(LeaseManager* manager, Callbacks callbacks)
      : manager_(manager), callbacks_(std::move(callbacks)) {}

  /// One scheduling quantum: leaders renew, followers try to acquire.
  /// Returns true when this replica is leader after the tick.
  bool Tick();

  /// Voluntarily steps down (releases the lease, fires on_lose).
  void StepDown();

  bool leading() const { return leading_; }

 private:
  LeaseManager* manager_;
  Callbacks callbacks_;
  bool leading_ = false;
};

}  // namespace nerpa::ha

#endif  // NERPA_HA_LEASE_H_
