# Empty compiler generated dependencies file for nerpa_net.
# This may be replaced when dependencies are built.
