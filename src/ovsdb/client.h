// A TCP OVSDB client for OvsdbServer: synchronous request/response plus an
// explicitly pumped update stream (no hidden threads — tests and the
// networked controller call Poll()/WaitForUpdate() deterministically).
#ifndef NERPA_OVSDB_CLIENT_H_
#define NERPA_OVSDB_CLIENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/status.h"
#include "ovsdb/jsonrpc.h"
#include "ovsdb/schema.h"

namespace nerpa::ovsdb {

class OvsdbClient {
 public:
  OvsdbClient() = default;
  ~OvsdbClient();

  OvsdbClient(const OvsdbClient&) = delete;
  OvsdbClient& operator=(const OvsdbClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  /// Round-trip "echo" (liveness probe).
  Status Echo();

  /// Fetches and parses the database schema.
  Result<DatabaseSchema> GetSchema();

  /// Runs a transaction (array of operation objects, as Database::Transact
  /// takes); returns the per-op results.
  Result<Json> Transact(Json operations);

  using UpdateHandler =
      std::function<void(const Json& monitor_id, const Json& updates)>;

  /// Registers a monitor on `tables` (empty = all); returns the initial
  /// contents.  Subsequent updates are queued and delivered to `handler`
  /// from Poll().
  Result<Json> Monitor(Json monitor_id, const std::vector<std::string>& tables,
                       UpdateHandler handler);
  Status MonitorCancel(const Json& monitor_id);

  /// Drains any queued update notifications into their handlers without
  /// blocking.  Returns the number of updates delivered.
  Result<int> Poll();

  /// Blocks (up to `timeout_ms`) until at least one update is delivered.
  Result<int> WaitForUpdate(int timeout_ms);

 private:
  /// Sends a request and blocks for its response, queueing any
  /// notifications that arrive in between.
  Result<JsonRpcMessage> Call(const std::string& method, Json params);
  Status ReadMore(int timeout_ms);  // feeds the splitter from the socket
  int DeliverQueued();

  int fd_ = -1;
  int64_t next_id_ = 1;
  JsonStreamSplitter splitter_;
  std::deque<JsonRpcMessage> inbox_;        // parsed, undelivered messages
  std::map<std::string, UpdateHandler> handlers_;  // monitor id dump -> cb
};

}  // namespace nerpa::ovsdb

#endif  // NERPA_OVSDB_CLIENT_H_
