// Minimal HTTP/1.1 for the northbound gateway: an incremental request
// parser (bytes in, complete requests out — connections are non-blocking
// so a request may arrive in arbitrary fragments) and response
// serialization.  Deliberately small: GET/POST with Content-Length bodies
// is all the gateway speaks; anything else is a clean parse error the
// caller turns into a 4xx/5xx, never a crash (tests/test_fuzz.cc drills
// this surface).
#ifndef NERPA_GATEWAY_HTTP_H_
#define NERPA_GATEWAY_HTTP_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>

#include "common/json.h"
#include "common/status.h"

namespace nerpa::gateway {

struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string target;   // raw request-target ("/v1/table/Port?tag=7")
  std::string path;     // target before '?', percent-decoded
  std::map<std::string, std::string> query;  // decoded query parameters
  // Header names are lower-cased on parse; values are trimmed.
  std::map<std::string, std::string> headers;
  std::string body;

  /// Header lookup by lower-case name; empty string when absent.
  const std::string& Header(const std::string& name) const;
  /// keep-alive unless the client sent "Connection: close".
  bool keep_alive() const;
};

struct HttpResponse {
  int status = 200;
  // Extra headers beyond the generated Content-Type/Content-Length.
  std::map<std::string, std::string> headers;
  std::string body;
  std::string content_type = "application/json";

  /// Full wire form, including the Connection header for `keep_alive`.
  std::string Serialize(bool keep_alive) const;
};

/// Convenience constructors used by every route.
HttpResponse JsonResponse(int status, const Json& body);
HttpResponse ErrorResponse(int status, std::string_view message);

/// The canonical reason phrase for a status code ("OK", "Not Found", ...).
std::string_view StatusReason(int status);

/// Incremental HTTP/1.1 request parser.  Feed() consumes bytes and appends
/// completed requests to an internal queue; a malformed stream poisons the
/// parser (every later Feed fails) because framing is unrecoverable.
class HttpParser {
 public:
  /// Hard limits: a head (request line + headers) or body beyond these is
  /// a parse error, so a hostile client cannot balloon gateway memory.
  static constexpr size_t kMaxHeadBytes = 16 * 1024;
  static constexpr size_t kMaxBodyBytes = 1024 * 1024;

  Status Feed(std::string_view data);

  /// True when at least one complete request is queued.
  bool HasRequest() const { return !complete_.empty(); }
  /// Pops the oldest completed request (HasRequest() must be true).
  HttpRequest PopRequest();

 private:
  Status ParseHead(std::string_view head, HttpRequest& out);
  Status Advance();  // consume as much of buffer_ as possible

  std::string buffer_;
  std::deque<HttpRequest> complete_;
  // Body accumulation state: set once a head has parsed.
  bool in_body_ = false;
  size_t body_remaining_ = 0;
  HttpRequest pending_;
  bool poisoned_ = false;
};

/// Percent-decodes `text` ('+' becomes space; bad escapes pass through).
std::string UrlDecode(std::string_view text);

}  // namespace nerpa::gateway

#endif  // NERPA_GATEWAY_HTTP_H_
