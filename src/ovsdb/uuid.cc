#include "ovsdb/uuid.h"

#include <atomic>
#include <cctype>

#include "common/strings.h"

namespace nerpa::ovsdb {

namespace {
// splitmix64: a tiny, high-quality mixer; seeded counter gives a
// deterministic but well-distributed UUID stream.
uint64_t Splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

Uuid Uuid::Generate() {
  static std::atomic<uint64_t> counter{0x5eed5eed5eed5eedULL};
  uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  Uuid u{Splitmix64(n), Splitmix64(n ^ 0xabcdef0123456789ULL)};
  if (u.IsZero()) u.lo = 1;
  return u;
}

std::optional<Uuid> Uuid::Parse(std::string_view text) {
  // Layout: 8-4-4-4-12 hex digits.
  static const int kGroups[] = {8, 4, 4, 4, 12};
  uint64_t parts[2] = {0, 0};
  size_t i = 0;
  int nibble_index = 0;
  for (int g = 0; g < 5; ++g) {
    if (g > 0) {
      if (i >= text.size() || text[i] != '-') return std::nullopt;
      ++i;
    }
    for (int d = 0; d < kGroups[g]; ++d) {
      if (i >= text.size() ||
          !std::isxdigit(static_cast<unsigned char>(text[i]))) {
        return std::nullopt;
      }
      char c = text[i++];
      int v = (c >= '0' && c <= '9') ? c - '0'
              : (c >= 'a' && c <= 'f') ? c - 'a' + 10
                                       : c - 'A' + 10;
      parts[nibble_index / 16] =
          (parts[nibble_index / 16] << 4) | static_cast<unsigned>(v);
      ++nibble_index;
    }
  }
  if (i != text.size()) return std::nullopt;
  return Uuid{parts[0], parts[1]};
}

std::string Uuid::ToString() const {
  return StrFormat("%08x-%04x-%04x-%04x-%012llx",
                   static_cast<uint32_t>(hi >> 32),
                   static_cast<uint32_t>((hi >> 16) & 0xFFFF),
                   static_cast<uint32_t>(hi & 0xFFFF),
                   static_cast<uint32_t>(lo >> 48),
                   static_cast<unsigned long long>(lo & 0xFFFFFFFFFFFFULL));
}

}  // namespace nerpa::ovsdb
