#include "nerpa/controller.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>

#include "common/clock.h"
#include "common/log.h"
#include "common/strings.h"

namespace nerpa {

const char* RoleName(Role role) {
  switch (role) {
    case Role::kLeader: return "leader";
    case Role::kFollower: return "follower";
    case Role::kCandidate: return "candidate";
  }
  return "unknown";
}

Controller::Controller(ovsdb::Database* db,
                       std::shared_ptr<const dlog::Program> program,
                       std::shared_ptr<const p4::P4Program> p4_program,
                       Bindings bindings, Options options)
    : db_(db),
      program_(std::move(program)),
      p4_program_(std::move(p4_program)),
      bindings_(std::move(bindings)),
      options_(std::move(options)) {
  digest_seq_ = options_.initial_digest_seq;
  role_.store(options_.initial_role, std::memory_order_release);
  fence_epoch_.store(options_.fence_epoch, std::memory_order_release);
}

Controller::Controller(ovsdb::Database* db,
                       std::shared_ptr<const dlog::Program> program,
                       std::shared_ptr<const p4::P4Program> p4_program,
                       Bindings bindings)
    : Controller(db, std::move(program), std::move(p4_program),
                 std::move(bindings), Options()) {}

Controller::~Controller() {
  if (anti_entropy_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(anti_entropy_mu_);
      stopping_ = true;
    }
    anti_entropy_cv_.notify_all();
    anti_entropy_thread_.join();
  }
  if (monitor_id_ != 0) db_->RemoveMonitor(monitor_id_);
}

Status Controller::AddDevice(std::string name, p4::RuntimeClient* client) {
  std::lock_guard<std::mutex> plane(sync_mu_);
  for (const Device& device : devices_) {
    if (device.name == name) {
      return AlreadyExists("device '" + name + "' already registered");
    }
  }
  devices_.push_back(Device{});
  devices_.back().name = std::move(name);
  devices_.back().client = client;
  client->set_fence_token(fence_epoch_.load(std::memory_order_acquire));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.breaker_states[devices_.back().name] = "closed";
    stats_.outbox_sizes[devices_.back().name] = 0;
  }
  // Followers register without resyncing — Promote() reconciles every
  // device when (if) leadership arrives.
  if (!started_ || role_.load(std::memory_order_acquire) != Role::kLeader) {
    return Status::Ok();
  }
  // Late registration = a device (re)joining a live controller: bring it
  // to the desired state with the minimal write set.
  Status synced = ResyncDeviceImpl(devices_.back());
  if (!synced.ok()) {
    if (options_.breaker.enabled &&
        synced.code() == StatusCode::kInternal) {
      // The rejoining device is still sick: quarantine it and let the
      // anti-entropy loop converge it later instead of failing the join.
      std::lock_guard<std::mutex> lock(stats_mu_);
      QuarantineLocked(devices_.back());
      return Status::Ok();
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.errors;
    if (last_error_.ok()) last_error_ = synced;
  }
  return synced;
}

Status Controller::ResyncDevice(const std::string& name) {
  if (!started_) return FailedPrecondition("controller not started");
  if (role_.load(std::memory_order_acquire) != Role::kLeader) {
    return FailedPrecondition("only the leader resynchronizes devices");
  }
  std::lock_guard<std::mutex> plane(sync_mu_);
  for (Device& device : devices_) {
    if (device.name == name) return ResyncDeviceImpl(device);
  }
  return NotFound("device '" + name + "' is not registered");
}

Status Controller::Start() {
  if (started_) return FailedPrecondition("controller already started");
  NERPA_RETURN_IF_ERROR(TypeCheck(*program_, bindings_));
  // The multicast relation, when configured, must be declared by hand with
  // the documented shape.
  if (!options_.multicast_relation.empty()) {
    int id = program_->FindRelation(options_.multicast_relation);
    if (id < 0) {
      return NotFound("multicast relation '" + options_.multicast_relation +
                      "' is not declared");
    }
    const dlog::RelationDecl& decl = program_->relation(id);
    size_t expected = bindings_.options.with_device_column ? 3 : 2;
    if (decl.role != dlog::RelationRole::kOutput ||
        decl.columns.size() != expected) {
      return TypeError(StrFormat(
          "multicast relation '%s' must be an output relation with %zu "
          "columns ([device: string,] group: bit<16>, port: bit<16>)",
          decl.name.c_str(), expected));
    }
  }
  // Warm start: restore the engine from the checkpoint blob when one was
  // supplied and it still matches this program; anything the engine
  // rejects degrades to a cold start (the checkpoint is an accelerator,
  // not a correctness dependency).
  if (!options_.engine_checkpoint.empty()) {
    Result<std::unique_ptr<dlog::Engine>> restored =
        dlog::Engine::Restore(program_, options_.engine_checkpoint);
    if (restored.ok()) {
      engine_ = std::move(restored).value();
      reconcile_restored_ = true;
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.engine_restores;
    } else {
      LOG_WARNING << "controller: engine checkpoint rejected ("
                  << restored.status().ToString() << "); cold-starting";
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.engine_restore_rejections;
    }
  }
  if (engine_ == nullptr) engine_ = std::make_unique<dlog::Engine>(program_);
  started_ = true;
  // Restart mode: let the engine absorb the initial state without writing
  // to devices, then reconcile each device against the derived state.
  suppress_writes_ = options_.resync_on_start;
  // The restored engine's multicast rows never flowed through a delta, so
  // the membership bookkeeping must be seeded from a dump before the first
  // update lands on top of it.
  if (reconcile_restored_ && !options_.multicast_relation.empty()) {
    NERPA_ASSIGN_OR_RETURN(std::vector<dlog::Row> rows,
                           engine_->Dump(options_.multicast_relation));
    dlog::SetDelta seed;
    seed.reserve(rows.size());
    for (dlog::Row& row : rows) seed.emplace_back(std::move(row), +1);
    std::vector<DeviceBatch> none;
    NERPA_RETURN_IF_ERROR(ApplyMulticastDelta(seed, none));
  }
  // Outputs derived from facts (empty for a restored engine — its fact
  // derivations are already part of the checkpointed state).
  dlog::TxnDelta initial = engine_->TakeInitialDelta();
  Status applied = ApplyOutputDelta(initial);
  if (!applied.ok()) {
    suppress_writes_ = false;
    return applied;
  }
  // Subscribe to every bound management-plane table.  The monitor delivers
  // the current database contents immediately as inserts.
  std::vector<std::string> tables;
  for (const OvsdbBinding& binding : bindings_.ovsdb_tables) {
    tables.push_back(binding.table);
  }
  monitor_id_ = db_->AddMonitor(
      tables, [this](const ovsdb::TableUpdates& updates) {
        OnOvsdbUpdate(updates);
      });
  if (reconcile_restored_) {
    // Every bound table is empty, so the monitor delivered no initial
    // update and the restored-engine catch-up has not run; drive it with
    // an empty snapshot (deleting every restored management-plane row).
    OnOvsdbUpdate(ovsdb::TableUpdates{});
  }
  if (options_.resync_on_start) {
    suppress_writes_ = false;
    // A follower skips the device reconciliation — it owns no devices.
    // Promote() runs exactly this resync when leadership arrives.
    if (role_.load(std::memory_order_acquire) == Role::kLeader) {
      NERPA_RETURN_IF_ERROR(ResyncAllDevices());
    }
  }
  if (options_.anti_entropy_interval_nanos > 0) {
    anti_entropy_thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(anti_entropy_mu_);
      while (!stopping_) {
        anti_entropy_cv_.wait_for(
            lock,
            std::chrono::nanoseconds(options_.anti_entropy_interval_nanos));
        if (stopping_) break;
        lock.unlock();
        Status probed = RunAntiEntropy();
        if (!probed.ok()) {
          LOG_WARNING << "controller: anti-entropy round failed: "
                      << probed.ToString();
        }
        lock.lock();
      }
    });
  }
  return last_error();
}

Result<std::string> Controller::CheckpointEngine() {
  if (!started_) return FailedPrecondition("controller not started");
  // Plane lock: SerializeState must see the engine between transactions.
  std::lock_guard<std::mutex> plane(sync_mu_);
  return engine_->SerializeState();
}

void Controller::SetFenceTokensLocked(uint64_t epoch) {
  fence_epoch_.store(epoch, std::memory_order_release);
  for (Device& device : devices_) device.client->set_fence_token(epoch);
}

Status Controller::ArbitrateAllLocked() {
  for (Device& device : devices_) {
    NERPA_RETURN_IF_ERROR(device.client->Arbitrate());
  }
  return Status::Ok();
}

void Controller::RecoverDigestSeqLocked() {
  // The engine state (possibly the old leader's checkpoint) carries the
  // sequence numbers the old leader assigned; most-recent-wins rules break
  // if this leader reuses one, so start strictly above the maximum.
  int64_t max_seen = -1;
  for (const DigestBinding& binding : bindings_.digests) {
    if (!binding.has_seq) continue;
    Result<std::vector<dlog::Row>> rows = engine_->Dump(binding.relation);
    if (!rows.ok()) continue;
    for (const dlog::Row& row : rows.value()) {
      if (row.size() == 0) continue;
      max_seen = std::max(max_seen, row[row.size() - 1].as_int());
    }
  }
  digest_seq_ = std::max(digest_seq_, max_seen + 1);
}

Status Controller::Promote(uint64_t epoch) {
  if (!started_) return FailedPrecondition("controller not started");
  if (role_.load(std::memory_order_acquire) == Role::kLeader) {
    // Already leading (e.g. a renewed mandate): just raise the token.
    std::lock_guard<std::mutex> plane(sync_mu_);
    SetFenceTokensLocked(epoch);
    Status arbitrated = ArbitrateAllLocked();
    // A failed arbitration means some device already answers to a newer
    // epoch — we only thought we were still leader.
    if (!arbitrated.ok()) Demote();
    return arbitrated;
  }
  role_.store(Role::kCandidate, std::memory_order_release);
  std::lock_guard<std::mutex> plane(sync_mu_);
  // Stamp the token on every client, then arbitrate: each switch raises
  // its fence high-water mark *now*, before any write — so the old leader
  // is locked out even if the resync below turns out to be a zero-write
  // diff.  Arbitration failure means a newer epoch beat us to a device;
  // leadership is refused.
  SetFenceTokensLocked(epoch);
  Status arbitrated = ArbitrateAllLocked();
  if (!arbitrated.ok()) {
    role_.store(Role::kFollower, std::memory_order_release);
    return arbitrated;
  }
  RecoverDigestSeqLocked();
  Status synced = ResyncAllDevices();
  if (!synced.ok()) {
    role_.store(Role::kFollower, std::memory_order_release);
    return synced;
  }
  role_.store(Role::kLeader, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.promotions;
    // Errors recorded while demoted (aborted batches racing the flip) are
    // not this mandate's problem; the resync above re-established ground
    // truth on every device.
    if (last_error_.code() == StatusCode::kPermissionDenied) {
      last_error_ = Status::Ok();
    }
  }
  return Status::Ok();
}

void Controller::Demote() {
  // Atomic flip, no locks: this is called from inside the write path (a
  // fenced-out worker while the monitor callback holds sync_mu_), so
  // taking the plane lock here would deadlock.  In-flight batches see the
  // flip at their next per-op check and abort.
  Role expected = role_.load(std::memory_order_acquire);
  while (expected != Role::kFollower) {
    if (role_.compare_exchange_weak(expected, Role::kFollower,
                                    std::memory_order_acq_rel)) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.demotions;
      return;
    }
  }
}

Status Controller::ReloadEngineCheckpoint(const std::string& checkpoint) {
  if (!started_) return FailedPrecondition("controller not started");
  if (role_.load(std::memory_order_acquire) == Role::kLeader) {
    return FailedPrecondition("leader does not reload engine checkpoints");
  }
  std::lock_guard<std::mutex> plane(sync_mu_);
  Result<std::unique_ptr<dlog::Engine>> restored =
      dlog::Engine::Restore(program_, checkpoint);
  if (!restored.ok()) return restored.status();
  engine_ = std::move(restored).value();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.engine_restores;
  }
  // Reseed the multicast bookkeeping from the restored state (same dance
  // as a warm Start(): those rows never flowed through a delta).
  multicast_members_.clear();
  if (!options_.multicast_relation.empty()) {
    NERPA_ASSIGN_OR_RETURN(std::vector<dlog::Row> rows,
                           engine_->Dump(options_.multicast_relation));
    dlog::SetDelta seed;
    seed.reserve(rows.size());
    for (dlog::Row& row : rows) seed.emplace_back(std::move(row), +1);
    std::vector<DeviceBatch> none;
    NERPA_RETURN_IF_ERROR(ApplyMulticastDelta(seed, none));
  }
  RecoverDigestSeqLocked();
  // Reconcile the checkpoint against the live database: feed the current
  // contents of every bound table as one synthetic snapshot.  Inserting a
  // present row is a set-semantics no-op; rows the checkpoint holds that
  // the database no longer does are deleted by the catch-up pass.
  reconcile_restored_ = true;
  ovsdb::TableUpdates snapshot;
  for (const OvsdbBinding& binding : bindings_.ovsdb_tables) {
    ovsdb::TableUpdate& table = snapshot[binding.table];
    for (const ovsdb::Row* row : db_->GetRows(binding.table)) {
      ovsdb::RowUpdate update;
      update.new_row = *row;
      table.emplace(row->uuid, std::move(update));
    }
  }
  return ProcessOvsdbUpdates(snapshot);
}

size_t Controller::DispatchWorkers(size_t jobs) const {
  if (jobs <= 1) return 1;
  size_t cap;
  if (options_.write_parallelism <= 0) {
    cap = std::thread::hardware_concurrency();
    if (cap == 0) cap = 1;
  } else {
    cap = static_cast<size_t>(options_.write_parallelism);
  }
  return std::min(jobs, cap);
}

ThreadPool& Controller::Pool(size_t want) {
  if (pool_ == nullptr || pool_->threads() < want) {
    pool_ = std::make_unique<ThreadPool>(want);
  }
  return *pool_;
}

Status Controller::ResyncAllDevices() {
  // With breakers enabled a device that cannot resynchronize is
  // quarantined (anti-entropy will converge it later) instead of failing
  // the whole round.
  auto resync_one = [this](Device& device) -> Status {
    Status synced = ResyncDeviceImpl(device);
    if (!synced.ok() && options_.breaker.enabled &&
        synced.code() == StatusCode::kInternal) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      QuarantineLocked(device);
      return Status::Ok();
    }
    return synced;
  };
  size_t workers = DispatchWorkers(devices_.size());
  if (workers <= 1) {
    for (Device& device : devices_) {
      NERPA_RETURN_IF_ERROR(resync_one(device));
    }
    return Status::Ok();
  }
  // Each device resynchronizes against the same (read-only) engine state;
  // faults on one device do not stop the others.  First error in device
  // registration order is reported.
  std::vector<Status> results(devices_.size());
  ThreadPool& pool = Pool(workers);
  for (size_t i = 0; i < devices_.size(); ++i) {
    Device* device = &devices_[i];
    Status* slot = &results[i];
    pool.Submit([&resync_one, device, slot] { *slot = resync_one(*device); });
  }
  pool.WaitIdle();
  for (const Status& status : results) NERPA_RETURN_IF_ERROR(status);
  return Status::Ok();
}

void Controller::OnOvsdbUpdate(const ovsdb::TableUpdates& updates) {
  // Plane lock: the monitor callback races the anti-entropy thread for
  // the engine and the multicast bookkeeping.
  std::lock_guard<std::mutex> plane(sync_mu_);
  Status status = ProcessOvsdbUpdates(updates);
  if (!status.ok()) {
    // A fenced-out write (stale lease epoch) is the replication protocol
    // working, not a fault: the controller has already self-demoted and
    // the new leader owns convergence.  Observable via stats().demotions /
    // fenced_writes_rejected rather than last_error().
    bool fenced = status.code() == StatusCode::kPermissionDenied;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (!fenced) {
        ++stats_.errors;
        if (last_error_.ok()) last_error_ = status;
      }
    }
    if (!fenced) {
      LOG_ERROR << "controller: failed to process management update: "
                << status.ToString();
    }
  }
}

Status Controller::QueueRestoredCatchUp(const ovsdb::TableUpdates& updates) {
  // The monitor's first delivery is the full current contents of every
  // bound table.  The restored engine's inputs reflect the contents at
  // checkpoint time; anything it holds that the snapshot no longer shows
  // was deleted while the controller was down.
  uint64_t deletes = 0;
  for (const OvsdbBinding& binding : bindings_.ovsdb_tables) {
    dlog::RowSet present;
    auto rows = updates.find(binding.table);
    if (rows != updates.end()) {
      const ovsdb::TableSchema* schema = db_->schema().FindTable(binding.table);
      for (const auto& [uuid, update] : rows->second) {
        if (!update.new_row) continue;
        NERPA_ASSIGN_OR_RETURN(dlog::Row row,
                               OvsdbRowToDlog(*schema, *update.new_row));
        present.insert(std::move(row));
      }
    }
    NERPA_ASSIGN_OR_RETURN(std::vector<dlog::Row> held,
                           engine_->Dump(binding.relation));
    for (dlog::Row& row : held) {
      if (present.count(row) > 0) continue;
      NERPA_RETURN_IF_ERROR(
          engine_->Delete(binding.relation, std::move(row)));
      ++deletes;
    }
  }
  if (deletes > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.catchup_deletes += deletes;
  }
  return Status::Ok();
}

Status Controller::ProcessOvsdbUpdates(const ovsdb::TableUpdates& updates) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.ovsdb_updates;
  }
  if (reconcile_restored_) {
    reconcile_restored_ = false;
    NERPA_RETURN_IF_ERROR(QueueRestoredCatchUp(updates));
  }
  for (const auto& [table_name, rows] : updates) {
    const OvsdbBinding* binding = bindings_.FindOvsdbTable(table_name);
    if (binding == nullptr) continue;  // not bound; ignore
    const ovsdb::TableSchema* schema = db_->schema().FindTable(table_name);
    for (const auto& [uuid, update] : rows) {
      if (update.old_row) {
        NERPA_ASSIGN_OR_RETURN(dlog::Row row,
                               OvsdbRowToDlog(*schema, *update.old_row));
        NERPA_RETURN_IF_ERROR(
            engine_->Delete(binding->relation, std::move(row)));
      }
      if (update.new_row) {
        NERPA_ASSIGN_OR_RETURN(dlog::Row row,
                               OvsdbRowToDlog(*schema, *update.new_row));
        NERPA_RETURN_IF_ERROR(
            engine_->Insert(binding->relation, std::move(row)));
      }
    }
  }
  NERPA_ASSIGN_OR_RETURN(dlog::TxnDelta delta, engine_->Commit());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.dlog_txns;
  }
  // The commit loop is alive: whatever the dispatch below does (park,
  // retry, shed), the engine itself made progress this cycle.
  if (options_.watchdog != nullptr) {
    options_.watchdog->Beat("controller.commit");
  }
  return ApplyOutputDelta(delta);
}

Status Controller::WriteWithRetry(Device& device,
                                  const std::function<Status()>& write) {
  const RetryPolicy& retry = options_.retry;
  const int64_t timeout = options_.breaker.write_timeout_nanos;
  int attempts = std::max(1, retry.max_attempts);
  BackoffPolicy policy;
  policy.initial_nanos = retry.initial_backoff_nanos;
  policy.multiplier = retry.backoff_multiplier;
  policy.max_nanos = retry.max_backoff_nanos;
  uint64_t seed;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    seed = ++breaker_rng_;
  }
  Backoff backoff(policy, seed);
  Status status;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Every retry across every device draws from one budget: against a
      // data plane that is mostly down, retries stop amplifying the load
      // once the budget drains, and the breaker/anti-entropy take over.
      if (!write_retry_budget_.TryWithdraw()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.retry_budget_exhausted;
        break;  // surface the previous attempt's error
      }
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.retries;
      }
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(backoff.NextDelayNanos()));
    }
    int64_t started = timeout > 0 ? MonotonicNanos() : 0;
    status = write();
    if (status.ok()) {
      write_retry_budget_.RecordSuccess();
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (timeout > 0 && MonotonicNanos() - started > timeout) {
        // The device answered, but too slowly to count as healthy: a
        // timeout strike, kept distinct from error strikes in the stats.
        ++stats_.slow_writes;
        StrikeLocked(device);
      } else if (options_.breaker.enabled &&
                 device.breaker == BreakerState::kClosed) {
        device.strikes = 0;  // a healthy write clears accumulated strikes
      }
      return status;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.device_failures[device.name];
    }
    // Only transient device errors (kInternal — what a flaky transport
    // raises) are worth re-attempting; validation and application errors
    // are deterministic and would just replay the failure.
    if (status.code() != StatusCode::kInternal) break;
  }
  if (status.code() == StatusCode::kPermissionDenied) {
    // Stale fencing token: the device is healthy but belongs to a newer
    // leader.  Self-demote (atomic — no locks held here) so the rest of
    // this delta and everything after it stops; no breaker strike, the
    // device did nothing wrong.
    Demote();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.fenced_writes_rejected;
    ++stats_.write_failures;
    return status;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.write_failures;
  if (status.code() == StatusCode::kInternal) StrikeLocked(device);
  return status;
}

void Controller::StrikeLocked(Device& device) {
  if (!options_.breaker.enabled) return;
  ++device.strikes;
  if (device.breaker == BreakerState::kClosed &&
      device.strikes >= options_.breaker.strike_threshold) {
    QuarantineLocked(device);
  }
}

void Controller::QuarantineLocked(Device& device) {
  device.breaker = BreakerState::kOpen;
  ++stats_.breaker_trips;
  stats_.breaker_states[device.name] = "open";
  if (device.next_cooldown_nanos == 0) {
    device.next_cooldown_nanos = options_.breaker.cooldown_nanos;
  }
  EscalateCooldownLocked(device);
}

void Controller::EscalateCooldownLocked(Device& device) {
  const BreakerPolicy& breaker = options_.breaker;
  int64_t cooldown = device.next_cooldown_nanos;
  // Jitter the quiet period: breakers tripped by one shared outage must
  // not send their half-open probes (each a full resync) in lockstep at
  // whatever just came back.  The escalation below stays un-jittered so
  // the nominal schedule is deterministic.
  int64_t jittered =
      cooldown > 0 ? JitterNanos(cooldown, 0.2, &breaker_rng_) : cooldown;
  device.cooldown_until_nanos = MonotonicNanos() + jittered;
  if (cooldown > 0) {
    device.next_cooldown_nanos = std::min<int64_t>(
        breaker.max_cooldown_nanos,
        static_cast<int64_t>(static_cast<double>(cooldown) *
                             breaker.cooldown_multiplier));
  }
}

std::string Controller::OutboxKey(const DeviceOp& op) const {
  if (op.multicast) return StrFormat("m:%u", op.group);
  const p4::Table* schema = p4_program_->FindTable(op.entry.table);
  std::string identity = schema != nullptr ? op.entry.KeyString(*schema)
                                           : op.entry.ToString();
  return "t:" + op.entry.table + "|" + identity;
}

bool Controller::QuarantineOps(Device& device, std::vector<DeviceOp> ops) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  for (DeviceOp& op : ops) {
    // Last-wins coalescing per entry identity / multicast group: however
    // long the quarantine, the outbox never outgrows the device's table
    // footprint.
    device.outbox[OutboxKey(op)] = std::move(op);
    ++stats_.outbox_coalesced;
  }
  stats_.outbox_sizes[device.name] = device.outbox.size();
  return true;
}

Status Controller::AppendEntryOps(std::vector<DeviceBatch>& batches,
                                  const std::string& device,
                                  p4::UpdateType type,
                                  const p4::TableEntry& entry) {
  bool routed = !device.empty();
  bool any = false;
  for (DeviceBatch& batch : batches) {
    if (routed && batch.device->name != device) continue;
    any = true;
    DeviceOp op;
    op.type = type;
    op.entry = entry;
    batch.ops.push_back(std::move(op));
  }
  if (routed && !any) {
    return NotFound("output row targets unknown device '" + device + "'");
  }
  return Status::Ok();
}

Status Controller::ExecuteBatch(DeviceBatch& batch, const Deadline& deadline) {
  // Worker-thread body: only this thread touches the batch's device, so
  // the device sees exactly the serial write order.  Stops at the device's
  // first error; other devices' batches are unaffected.
  Device& device = *batch.device;
  for (size_t i = 0; i < batch.ops.size(); ++i) {
    if (deadline.expired()) {
      // Commit budget spent (a slow or flapping device ate it): park the
      // rest of the batch in the outbox and report success.  The commit
      // stops monopolizing the dispatch path, no op is dropped — the next
      // anti-entropy pass sees the non-empty outbox and reconciles the
      // device, exactly like a sub-threshold write failure.
      size_t parked = batch.ops.size() - i;
      QuarantineOps(device, {batch.ops.begin() +
                                 static_cast<std::ptrdiff_t>(i),
                             batch.ops.end()});
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.deadline_parks += parked;
      return Status::Ok();
    }
    if (role_.load(std::memory_order_acquire) != Role::kLeader) {
      // Demoted mid-batch (lease loss, or a fenced rejection on another
      // device of this same delta): abort the remaining ops.  Nothing is
      // parked — the new leader's promotion resync owns these devices.
      return PermissionDenied("batch aborted: controller demoted");
    }
    if (options_.breaker.enabled) {
      bool quarantined;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        quarantined = device.breaker != BreakerState::kClosed;
      }
      if (quarantined) {
        // Quarantined device: absorb the rest of the batch into the
        // outbox without touching the (dead) device, and report success —
        // the delta must not fail because one switch is down.
        QuarantineOps(device, {batch.ops.begin() +
                                   static_cast<std::ptrdiff_t>(i),
                               batch.ops.end()});
        return Status::Ok();
      }
    }
    DeviceOp& op = batch.ops[i];
    Status status = WriteWithRetry(device, [&] {
      if (op.multicast) {
        return device.client->SetMulticastGroup(op.group, op.members);
      }
      return device.client->Write({p4::Update{op.type, op.entry}});
    });
    if (!status.ok()) {
      if (status.code() == StatusCode::kPermissionDenied) {
        // Fenced out: WriteWithRetry already self-demoted.  Never park
        // fenced ops in the outbox — the device is healthy and owned by
        // the new leader; replaying stale state at it later would be
        // exactly the split-brain the fence exists to stop.
        return status;
      }
      if (options_.breaker.enabled) {
        bool tripped;
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          tripped = device.breaker != BreakerState::kClosed;
        }
        // The failed op and everything after it becomes outbox state
        // either way: if the breaker tripped, the half-open probe's resync
        // diff replays it on rejoin; if it did not (strikes below the
        // threshold), the next anti-entropy pass sees the non-empty outbox
        // and reconciles the device.  Without the second arm a sub-threshold
        // failure would drop the delta forever — a later healthy write
        // clears the strikes and nothing ever repairs the gap.
        QuarantineOps(device, {batch.ops.begin() +
                                   static_cast<std::ptrdiff_t>(i),
                               batch.ops.end()});
        if (tripped) return Status::Ok();
      }
      return status;
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (op.multicast) {
      ++stats_.multicast_updates;
    } else if (op.type == p4::UpdateType::kInsert) {
      ++stats_.entries_inserted;
    } else if (op.type == p4::UpdateType::kDelete) {
      ++stats_.entries_deleted;
    }
  }
  return Status::Ok();
}

Status Controller::RunBatches(std::vector<DeviceBatch>& batches,
                              const Deadline& deadline) {
  size_t busy = 0;
  for (const DeviceBatch& batch : batches) {
    if (!batch.ops.empty()) ++busy;
  }
  if (busy == 0) return Status::Ok();
  size_t workers = DispatchWorkers(busy);
  if (workers <= 1) {
    Status first;
    for (DeviceBatch& batch : batches) {
      if (batch.ops.empty()) continue;
      Status status = ExecuteBatch(batch, deadline);
      if (!status.ok() && first.ok()) first = status;
    }
    return first;
  }
  std::vector<Status> results(batches.size());
  ThreadPool& pool = Pool(workers);
  for (size_t i = 0; i < batches.size(); ++i) {
    if (batches[i].ops.empty()) continue;
    DeviceBatch* batch = &batches[i];
    Status* slot = &results[i];
    pool.Submit([this, batch, slot, deadline] {
      *slot = ExecuteBatch(*batch, deadline);
    });
  }
  pool.WaitIdle();
  for (const Status& status : results) NERPA_RETURN_IF_ERROR(status);
  return Status::Ok();
}

Status Controller::ApplyOutputDelta(const dlog::TxnDelta& delta) {
  if (suppress_writes_ ||
      role_.load(std::memory_order_acquire) != Role::kLeader) {
    // Startup resync, or a follower/demoted controller: the engine itself
    // accumulates the desired table state, so entry conversion is deferred
    // to ResyncDeviceImpl (at Start() for resync, at Promote() for a
    // follower); only the multicast membership bookkeeping must be kept
    // current.
    std::vector<DeviceBatch> none;
    for (const auto& [relation, rows] : delta.outputs) {
      if (relation == options_.multicast_relation) {
        NERPA_RETURN_IF_ERROR(ApplyMulticastDelta(rows, none));
      }
    }
    return Status::Ok();
  }
  // The whole delta is first staged as one ordered batch per device —
  // deletes first so that modify (retract+assert of the same match key)
  // never collides with the still-installed old entry, multicast
  // reprograms as the delta is walked, inserts last — then the batches
  // run, concurrently across devices.  Conversion and routing errors thus
  // surface before anything is written.
  std::vector<DeviceBatch> batches(devices_.size());
  for (size_t i = 0; i < devices_.size(); ++i) {
    batches[i].device = &devices_[i];
  }
  struct PendingInsert {
    std::string device;
    p4::TableEntry entry;
  };
  std::vector<PendingInsert> inserts;
  for (const auto& [relation, rows] : delta.outputs) {
    if (relation == options_.multicast_relation) {
      NERPA_RETURN_IF_ERROR(ApplyMulticastDelta(rows, batches));
      continue;
    }
    const TableBinding* binding = bindings_.FindTable(relation);
    if (binding == nullptr) {
      LOG_WARNING << "controller: output relation '" << relation
                  << "' is not bound to a P4 table; ignoring its delta";
      continue;
    }
    for (const auto& [row, direction] : rows) {
      NERPA_ASSIGN_OR_RETURN(auto converted,
                             DlogRowToEntry(*binding, *p4_program_, row));
      if (direction < 0) {
        NERPA_RETURN_IF_ERROR(AppendEntryOps(batches, converted.first,
                                             p4::UpdateType::kDelete,
                                             converted.second));
      } else {
        inserts.push_back(PendingInsert{std::move(converted.first),
                                        std::move(converted.second)});
      }
    }
  }
  for (const PendingInsert& pending : inserts) {
    NERPA_RETURN_IF_ERROR(AppendEntryOps(batches, pending.device,
                                         p4::UpdateType::kInsert,
                                         pending.entry));
  }
  // The commit deadline is minted here, after conversion: it budgets the
  // dispatch (the part that holds devices hostage), not the pure compute.
  Deadline deadline = options_.commit_deadline_nanos > 0
                          ? Deadline::AfterNanos(options_.commit_deadline_nanos)
                          : Deadline();
  return RunBatches(batches, deadline);
}

Status Controller::ApplyMulticastDelta(const dlog::SetDelta& delta,
                                       std::vector<DeviceBatch>& batches) {
  bool with_device = bindings_.options.with_device_column;
  std::set<std::pair<std::string, uint32_t>> dirty;
  for (const auto& [row, direction] : delta) {
    size_t base = with_device ? 1 : 0;
    std::string device = with_device ? row[0].as_string() : "";
    uint32_t group = static_cast<uint32_t>(row[base].as_bit());
    uint64_t port = row[base + 1].as_bit();
    auto key = std::make_pair(device, group);
    auto& members = multicast_members_[key];
    if (direction > 0) {
      if (std::find(members.begin(), members.end(), port) == members.end()) {
        members.push_back(port);
        std::sort(members.begin(), members.end());
      }
    } else {
      members.erase(std::remove(members.begin(), members.end(), port),
                    members.end());
    }
    dirty.insert(key);
  }
  for (const auto& key : dirty) {
    const auto& [device, group] = key;
    const std::vector<uint64_t>& members = multicast_members_[key];
    bool routed = !device.empty();
    if (!suppress_writes_) {
      // The final membership for this delta is snapshotted into the op;
      // the write itself happens when the device's batch runs.
      for (DeviceBatch& batch : batches) {
        if (routed && batch.device->name != device) continue;
        DeviceOp op;
        op.multicast = true;
        op.group = group;
        op.members = members;
        batch.ops.push_back(std::move(op));
      }
    }
    if (members.empty()) multicast_members_.erase(key);
  }
  return Status::Ok();
}

Status Controller::ResyncDeviceImpl(Device& device) {
  // May run on a pool worker (parallel startup resync), so every stats
  // update goes through the mutex; engine/bindings access is read-only.
  auto bump = [this](uint64_t& counter) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counter;
  };
  bump(stats_.resyncs);
  // Phase 1: desired entries for this device, derived from the output
  // relations (the engine is the single source of truth — whatever the
  // management plane implies, post-restart or live, is in there).
  // Keyed by the entry's canonical P4Runtime identity (match + priority).
  std::map<std::string, std::map<std::string, p4::TableEntry>> desired;
  for (const TableBinding& binding : bindings_.tables) {
    NERPA_ASSIGN_OR_RETURN(std::vector<dlog::Row> rows,
                           engine_->Dump(binding.relation));
    const p4::Table* schema = p4_program_->FindTable(binding.p4_table);
    if (schema == nullptr) {
      return Internal("bound P4 table '" + binding.p4_table + "' missing");
    }
    auto& want = desired[binding.p4_table];
    for (const dlog::Row& row : rows) {
      NERPA_ASSIGN_OR_RETURN(auto converted,
                             DlogRowToEntry(binding, *p4_program_, row));
      if (!converted.first.empty() && converted.first != device.name) {
        continue;  // routed to a different device
      }
      want[converted.second.KeyString(*schema)] = std::move(converted.second);
    }
  }
  // Phase 2: read the device's actual tables and compute the minimal
  // delete/modify/insert set.  Deletes go first (freeing match keys),
  // inserts last.
  std::vector<p4::TableEntry> to_delete, to_insert, to_modify;
  for (const TableBinding& binding : bindings_.tables) {
    bump(stats_.resync_reads);
    NERPA_ASSIGN_OR_RETURN(std::vector<p4::TableEntry> actual,
                           device.client->ReadTable(binding.p4_table));
    const p4::Table* schema = p4_program_->FindTable(binding.p4_table);
    auto& want = desired[binding.p4_table];
    std::set<std::string> held;
    for (p4::TableEntry& entry : actual) {
      std::string key = entry.KeyString(*schema);
      auto it = want.find(key);
      if (it == want.end()) {
        to_delete.push_back(std::move(entry));
        continue;
      }
      held.insert(key);
      if (it->second.action != entry.action ||
          it->second.action_args != entry.action_args) {
        to_modify.push_back(it->second);
      }
    }
    for (auto& [key, entry] : want) {
      if (held.count(key) == 0) to_insert.push_back(entry);
    }
  }
  auto apply = [&](p4::UpdateType type, const p4::TableEntry& entry) {
    return WriteWithRetry(device, [&] {
      return device.client->Write({p4::Update{type, entry}});
    });
  };
  for (const p4::TableEntry& entry : to_delete) {
    NERPA_RETURN_IF_ERROR(apply(p4::UpdateType::kDelete, entry));
    bump(stats_.resync_deleted);
  }
  for (const p4::TableEntry& entry : to_modify) {
    NERPA_RETURN_IF_ERROR(apply(p4::UpdateType::kModify, entry));
    bump(stats_.resync_modified);
  }
  for (const p4::TableEntry& entry : to_insert) {
    NERPA_RETURN_IF_ERROR(apply(p4::UpdateType::kInsert, entry));
    bump(stats_.resync_inserted);
  }
  // Phase 3: multicast groups, same discipline.
  std::map<uint32_t, std::vector<uint64_t>> want_groups;
  for (const auto& [key, members] : multicast_members_) {
    const auto& [dev, group] = key;
    if (!dev.empty() && dev != device.name) continue;
    want_groups[group] = members;  // members kept sorted by ApplyMulticastDelta
  }
  bump(stats_.resync_reads);
  NERPA_ASSIGN_OR_RETURN(auto group_list, device.client->ReadMulticastGroups());
  std::map<uint32_t, std::vector<uint64_t>> have_groups;
  for (auto& [group, ports] : group_list) {
    std::sort(ports.begin(), ports.end());
    have_groups[group] = std::move(ports);
  }
  auto set_group = [&](uint32_t group, const std::vector<uint64_t>& members) {
    return WriteWithRetry(device, [&] {
      return device.client->SetMulticastGroup(group, members);
    });
  };
  for (const auto& [group, ports] : have_groups) {
    if (want_groups.count(group) != 0) continue;
    NERPA_RETURN_IF_ERROR(set_group(group, {}));
    bump(stats_.resync_deleted);
  }
  for (const auto& [group, members] : want_groups) {
    auto it = have_groups.find(group);
    if (it == have_groups.end()) {
      NERPA_RETURN_IF_ERROR(set_group(group, members));
      bump(stats_.resync_inserted);
    } else if (it->second != members) {
      NERPA_RETURN_IF_ERROR(set_group(group, members));
      bump(stats_.resync_modified);
    }
  }
  return Status::Ok();
}

Status Controller::RunAntiEntropy() {
  if (!started_) return FailedPrecondition("controller not started");
  // Followers own no devices; probing (= resyncing) one would fight the
  // leader.  Cheap no-op so callers can pump unconditionally.
  if (role_.load(std::memory_order_acquire) != Role::kLeader) {
    return Status::Ok();
  }
  std::lock_guard<std::mutex> plane(sync_mu_);
  int64_t now = MonotonicNanos();
  for (Device& device : devices_) {
    bool probe = false;
    bool repair = false;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (device.breaker == BreakerState::kOpen &&
          now >= device.cooldown_until_nanos) {
        device.breaker = BreakerState::kHalfOpen;
        stats_.breaker_states[device.name] = "half-open";
        ++stats_.breaker_probes;
        probe = true;
      } else if (device.breaker == BreakerState::kClosed &&
                 !device.outbox.empty()) {
        // A closed breaker with a non-empty outbox means a sub-threshold
        // write failure parked ops there (ExecuteBatch preserves them even
        // when the strike count stays below the trip point).  Reconcile now;
        // on failure the outbox stays populated and the next pass retries.
        repair = true;
      }
    }
    if (probe) {
      ProbeDevice(device);
    } else if (repair) {
      Status synced = ResyncDeviceImpl(device);
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (synced.ok()) {
        device.outbox.clear();
        stats_.outbox_sizes[device.name] = 0;
        ++stats_.outbox_repairs;
      }
    }
  }
  return Status::Ok();
}

void Controller::ProbeDevice(Device& device) {
  // Half-open trial: one full reconciliation.  Success proves the device
  // is answering *and* leaves it byte-identical to the desired state —
  // the minimal resync diff subsumes whatever accumulated in the outbox
  // (and whatever was half-written before the trip).
  Status synced = ResyncDeviceImpl(device);
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (synced.ok()) {
    device.breaker = BreakerState::kClosed;
    device.strikes = 0;
    device.next_cooldown_nanos = options_.breaker.cooldown_nanos;
    device.outbox.clear();
    stats_.breaker_states[device.name] = "closed";
    stats_.outbox_sizes[device.name] = 0;
    ++stats_.breaker_rejoins;
  } else {
    device.breaker = BreakerState::kOpen;
    stats_.breaker_states[device.name] = "open";
    EscalateCooldownLocked(device);
  }
}

Controller::Stats Controller::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

Status Controller::SyncDataPlaneNotifications() {
  if (!started_) return FailedPrecondition("controller not started");
  // Digests drain destructively from the switch; a follower polling them
  // would steal the leader's MAC-learning events.  Followers pick learned
  // state up through checkpoint reloads instead.
  if (role_.load(std::memory_order_acquire) != Role::kLeader) {
    return Status::Ok();
  }
  std::lock_guard<std::mutex> plane(sync_mu_);
  bool any = false;
  Status first_error;
  for (Device& device : devices_) {
    device.client->SubscribeDigests([&](const p4::DigestMessage& message) {
      const DigestBinding* binding = bindings_.FindDigest(message.name);
      if (binding == nullptr) return;
      dlog::Row row =
          DigestToDlog(*binding, message, device.name, digest_seq_++);
      Status status = engine_->Insert(binding->relation, std::move(row));
      if (!status.ok() && first_error.ok()) first_error = status;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.digests;
      }
      any = true;
    });
    device.client->PollDigests();
  }
  NERPA_RETURN_IF_ERROR(first_error);
  if (!any) return Status::Ok();
  NERPA_ASSIGN_OR_RETURN(dlog::TxnDelta delta, engine_->Commit());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.dlog_txns;
  }
  return ApplyOutputDelta(delta);
}

}  // namespace nerpa
