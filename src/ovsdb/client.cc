#include "ovsdb/client.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/clock.h"
#include "common/strings.h"
#include "ovsdb/uuid.h"

namespace nerpa::ovsdb {

OvsdbClient::OvsdbClient()
    // The uuid stream is deterministic per process; folding in the clock
    // keeps tokens from colliding across processes talking to one server.
    : session_token_(StrFormat("%s/%llx", Uuid::Generate().ToString().c_str(),
                               static_cast<unsigned long long>(
                                   MonotonicNanos()))),
      jitter_rng_(static_cast<uint64_t>(MonotonicNanos()) ^
                  reinterpret_cast<uintptr_t>(this)) {}

OvsdbClient::~OvsdbClient() { Disconnect(); }

Status OvsdbClient::Dial() {
  CloseSocket();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Internal("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgument("bad host '" + host_ + "' (use a dotted quad)");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd_);
    fd_ = -1;
    return Internal(StrFormat(
        "connect(%s:%u) failed: %s", host_.c_str(), port_,
        std::strerror(errno)));  // NOLINT(concurrency-mt-unsafe)
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Status::Ok();
}

Status OvsdbClient::Connect(const std::string& host, uint16_t port) {
  Disconnect();
  host_ = host;
  port_ = port;
  return Dial();
}

void OvsdbClient::CloseSocket() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  inbox_.clear();
  splitter_ = JsonStreamSplitter{};
}

void OvsdbClient::Disconnect() {
  CloseSocket();
  registrations_.clear();
}

void OvsdbClient::InjectTransportFault() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void OvsdbClient::InjectReceiveFault() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

Json OvsdbClient::SpecToRequests(
    const std::map<std::string, std::vector<std::string>>& spec) {
  Json::Object requests;
  for (const auto& [table, columns] : spec) {
    Json::Object table_spec;
    if (!columns.empty()) {
      Json::Array names;
      for (const std::string& column : columns) names.push_back(Json(column));
      table_spec["columns"] = Json(std::move(names));
    }
    requests[table] = Json(std::move(table_spec));
  }
  return Json(std::move(requests));
}

Status OvsdbClient::Heal() {
  if (!heal_.enabled) return FailedPrecondition("healing disabled");
  if (healing_) return Internal("transport died during a heal");
  healing_ = true;
  heal_delivered_ = 0;
  auto bump = [this](uint64_t SessionStats::* counter, uint64_t by = 1) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.*counter += by;
  };
  Status status = Internal("no reconnect attempts allowed");
  BackoffPolicy policy;
  policy.initial_nanos = int64_t{heal_.backoff_ms} * 1'000'000;
  policy.max_nanos = int64_t{heal_.max_backoff_ms} * 1'000'000;
  Backoff backoff(policy, ++jitter_rng_);
  for (int attempt = 0; attempt < heal_.max_attempts; ++attempt) {
    if (attempt > 0) {
      // Each retry beyond the first withdraws from the session budget:
      // against a hard-down server the budget drains and the heal fails
      // fast instead of joining a reconnect storm.
      if (!heal_budget_.TryWithdraw()) {
        bump(&SessionStats::heal_budget_exhausted);
        status = Internal("heal retry budget exhausted");
        break;
      }
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(backoff.NextDelayNanos()));
    }
    status = Dial();
    if (status.ok()) break;
  }
  if (!status.ok()) {
    bump(&SessionStats::failed_heals);
    healing_ = false;
    return status;
  }
  bump(&SessionStats::reconnects);
  // Priority is a per-session server-side mark; the fresh transport is a
  // fresh session, so re-assert it before anything else competes.
  if (priority_level_ > 0) {
    Result<JsonRpcMessage> response = CallRaw(
        "set_priority",
        Json(Json::Array{Json(static_cast<int64_t>(priority_level_))}),
        NextId());
    if (!response.ok()) {
      bump(&SessionStats::failed_heals);
      healing_ = false;
      return response.status();
    }
  }
  // Resume every monitor from its last seen txn-id; the server replays
  // exactly the missed deltas (or a full dump if the gap aged out).
  for (auto& [key, reg] : registrations_) {
    Json::Array params;
    params.push_back(Json("db"));
    params.push_back(reg.id);
    params.push_back(SpecToRequests(reg.spec));
    params.push_back(Json(reg.last_txn_id));
    // The epoch names the server incarnation the txn-id came from; a
    // restarted server answers found=false (full dump) instead of
    // replaying deltas from an unrelated history.
    params.push_back(Json(server_epoch_));
    Result<JsonRpcMessage> response =
        CallRaw("monitor_since", Json(std::move(params)), NextId());
    if (!response.ok()) {
      healing_ = false;
      bump(&SessionStats::failed_heals);
      return response.status();
    }
    if (!response->error.is_null()) {
      healing_ = false;
      bump(&SessionStats::failed_heals);
      return Internal("monitor_since error: " + response->error.Dump());
    }
    const Json& reply = response->result;
    if (!reply.is_array() || reply.as_array().size() < 3 ||
        !reply.as_array()[2].is_array()) {
      healing_ = false;
      bump(&SessionStats::failed_heals);
      return Internal("malformed monitor_since reply: " + reply.Dump());
    }
    bool found =
        reply.as_array()[0].is_bool() && reply.as_array()[0].as_bool();
    if (!found) bump(&SessionStats::full_redumps);
    for (const Json& payload : reply.as_array()[2].as_array()) {
      reg.handler(reg.id, payload);
      bump(&SessionStats::replayed_updates);
      ++heal_delivered_;
    }
    if (reply.as_array()[1].is_integer()) {
      reg.last_txn_id = reply.as_array()[1].as_integer();
    }
    if (reply.as_array().size() >= 4 && reply.as_array()[3].is_string()) {
      server_epoch_ = reply.as_array()[3].as_string();
    }
  }
  healing_ = false;
  heal_budget_.RecordSuccess();
  return Status::Ok();
}

Status OvsdbClient::ReadMore(int timeout_ms) {
  if (fd_ < 0) return FailedPrecondition("not connected");
  pollfd pfd{fd_, POLLIN, 0};
  int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) return Internal("poll() failed");
  if (ready == 0) return Status::Ok();  // timeout; caller decides
  char buffer[4096];
  ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
  if (n == 0) return FailedPrecondition("server closed the connection");
  if (n < 0) return Internal("recv() failed");
  return splitter_.Feed(
      std::string_view(buffer, static_cast<size_t>(n)),
      [&](std::string_view text) -> Status {
        NERPA_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
        NERPA_ASSIGN_OR_RETURN(JsonRpcMessage message,
                               JsonRpcMessage::FromJson(json));
        inbox_.push_back(std::move(message));
        return Status::Ok();
      });
}

int OvsdbClient::DeliverQueued() {
  int delivered = 0;
  for (auto it = inbox_.begin(); it != inbox_.end();) {
    // Plain "update" params are [id, updates]; monitor_since sessions get
    // [id, updates, txn-id] so the client can resume after a drop.
    bool is_update = it->kind == JsonRpcMessage::Kind::kNotification &&
                     it->method == "update" && it->params.is_array() &&
                     (it->params.as_array().size() == 2 ||
                      it->params.as_array().size() == 3);
    if (is_update) {
      const Json::Array& params = it->params.as_array();
      auto reg = registrations_.find(params[0].Dump());
      if (reg != registrations_.end()) {
        reg->second.handler(params[0], params[1]);
        if (params.size() == 3 && params[2].is_integer()) {
          reg->second.last_txn_id = params[2].as_integer();
        }
        ++delivered;
      }
      it = inbox_.erase(it);
    } else {
      ++it;
    }
  }
  return delivered;
}

Json OvsdbClient::NextId() {
  return Json(StrFormat("%s#%lld", session_token_.c_str(),
                        static_cast<long long>(next_id_++)));
}

Result<JsonRpcMessage> OvsdbClient::CallRaw(const std::string& method,
                                            Json params, const Json& id,
                                            Deadline deadline) {
  if (fd_ < 0) return FailedPrecondition("not connected");
  if (deadline.expired()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.deadline_rejects;
    return DeadlineExceeded(method + ": deadline expired before send");
  }
  JsonRpcMessage request =
      JsonRpcMessage::Request(method, std::move(params), id);
  if (!deadline.infinite()) request.deadline_nanos = deadline.nanos();
  std::string wire = request.ToJson().Dump();
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n =
        ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return Internal("send() failed");
    sent += static_cast<size_t>(n);
  }
  // Wait for the matching response (no longer than the deadline allows);
  // queue notifications seen on the way.
  for (int spins = 0; spins < 10000; ++spins) {
    for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
      if (it->kind == JsonRpcMessage::Kind::kResponse && it->id == id) {
        JsonRpcMessage response = std::move(*it);
        inbox_.erase(it);
        return response;
      }
    }
    if (deadline.expired()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.deadline_rejects;
      return DeadlineExceeded(method + ": deadline expired awaiting response");
    }
    NERPA_RETURN_IF_ERROR(ReadMore(deadline.remaining_ms(/*ceiling_ms=*/1000)));
  }
  return Internal("no response to '" + method + "'");
}

Result<JsonRpcMessage> OvsdbClient::Call(const std::string& method,
                                         Json params, Deadline deadline) {
  // Keep a copy for the single heal-and-retry; skipped when healing is off
  // (or when already inside a heal, where CallRaw is used directly).
  Json retry_params = heal_.enabled ? params : Json();
  Json id = NextId();
  Result<JsonRpcMessage> result =
      CallRaw(method, std::move(params), id, deadline);
  if (result.ok()) {
    heal_budget_.RecordSuccess();
    return result;
  }
  if (!heal_.enabled || healing_ ||
      result.status().code() == StatusCode::kDeadlineExceeded) {
    return result;
  }
  // A heal is pointless work for a caller whose clock already ran out.
  NERPA_RETURN_IF_ERROR(CheckDeadline(deadline, method.c_str()));
  NERPA_RETURN_IF_ERROR(Heal());
  // Same id on the retry: if the server applied the request but the
  // response was lost in the fault, it answers from its transact cache
  // instead of applying the transaction a second time.
  return CallRaw(method, std::move(retry_params), id, deadline);
}

Status OvsdbClient::Echo() {
  NERPA_ASSIGN_OR_RETURN(
      JsonRpcMessage response,
      Call("echo", Json(Json::Array{Json("ping")})));
  if (!response.error.is_null()) {
    return Internal("echo error: " + response.error.Dump());
  }
  return Status::Ok();
}

Result<DatabaseSchema> OvsdbClient::GetSchema() {
  NERPA_ASSIGN_OR_RETURN(JsonRpcMessage response,
                         Call("get_schema", Json(Json::Array{})));
  if (!response.error.is_null()) {
    return Internal("get_schema error: " + response.error.Dump());
  }
  return DatabaseSchema::FromJson(response.result);
}

Result<Json> OvsdbClient::Transact(Json operations, Deadline deadline) {
  if (!operations.is_array()) {
    return InvalidArgument("transact takes an array of operations");
  }
  Json::Array params;
  params.push_back(Json("db"));
  for (Json& op : operations.as_array()) params.push_back(std::move(op));
  NERPA_ASSIGN_OR_RETURN(
      JsonRpcMessage response,
      Call("transact", Json(std::move(params)), deadline));
  if (!response.error.is_null()) {
    std::string error = response.error.Dump();
    if (error.find("deadline exceeded") != std::string::npos) {
      return DeadlineExceeded("transact: " + error);
    }
    return FailedPrecondition("transact error: " + error);
  }
  return response.result;
}

Result<Json> OvsdbClient::Monitor(Json monitor_id,
                                  const std::vector<std::string>& tables,
                                  UpdateHandler handler) {
  std::map<std::string, std::vector<std::string>> spec;
  for (const std::string& table : tables) spec[table];  // all columns
  return RegisterMonitor(std::move(monitor_id), std::move(spec),
                         std::move(handler));
}

Result<Json> OvsdbClient::MonitorColumns(
    Json monitor_id, std::map<std::string, std::vector<std::string>> spec,
    UpdateHandler handler) {
  return RegisterMonitor(std::move(monitor_id), std::move(spec),
                         std::move(handler));
}

Result<Json> OvsdbClient::RegisterMonitor(
    Json monitor_id, std::map<std::string, std::vector<std::string>> spec,
    UpdateHandler handler) {
  std::string key = monitor_id.Dump();
  if (registrations_.count(key) != 0) {
    return AlreadyExists("monitor id " + key + " already registered");
  }
  Json::Array params;
  params.push_back(Json("db"));
  params.push_back(monitor_id);
  params.push_back(SpecToRequests(spec));
  params.push_back(Json(static_cast<int64_t>(-1)));  // no prior session
  NERPA_ASSIGN_OR_RETURN(JsonRpcMessage response,
                         Call("monitor_since", Json(std::move(params))));
  if (!response.error.is_null()) {
    return FailedPrecondition("monitor error: " + response.error.Dump());
  }
  const Json& reply = response.result;
  if (!reply.is_array() || reply.as_array().size() < 3 ||
      !reply.as_array()[2].is_array()) {
    return Internal("malformed monitor_since reply: " + reply.Dump());
  }
  MonitorReg reg;
  reg.id = monitor_id;
  reg.spec = std::move(spec);
  reg.handler = std::move(handler);
  if (reply.as_array()[1].is_integer()) {
    reg.last_txn_id = reply.as_array()[1].as_integer();
  }
  if (reply.as_array().size() >= 4 && reply.as_array()[3].is_string()) {
    server_epoch_ = reply.as_array()[3].as_string();
  }
  // With last=-1 the server always answers found=false: one full dump,
  // which is exactly the initial contents.
  Json initial = reply.as_array()[2].as_array().empty()
                     ? Json(Json::Object{})
                     : reply.as_array()[2].as_array()[0];
  registrations_[key] = std::move(reg);
  return initial;
}

Result<Json> OvsdbClient::Fetch(const std::string& table, Json where,
                                std::vector<std::string> columns,
                                Deadline deadline) {
  Json::Array columns_json;
  for (std::string& column : columns) {
    columns_json.push_back(Json(std::move(column)));
  }
  NERPA_ASSIGN_OR_RETURN(
      JsonRpcMessage response,
      Call("fetch",
           Json(Json::Array{Json("db"), Json(table), std::move(where),
                            Json(std::move(columns_json))}),
           deadline));
  if (!response.error.is_null()) {
    std::string error = response.error.Dump();
    if (error.find("deadline exceeded") != std::string::npos) {
      return DeadlineExceeded("fetch: " + error);
    }
    return FailedPrecondition("fetch error: " + error);
  }
  return response.result;
}

Status OvsdbClient::SetPriority(int level) {
  NERPA_ASSIGN_OR_RETURN(
      JsonRpcMessage response,
      Call("set_priority",
           Json(Json::Array{Json(static_cast<int64_t>(level))})));
  if (!response.error.is_null()) {
    return FailedPrecondition("set_priority error: " + response.error.Dump());
  }
  priority_level_ = level;  // re-asserted by future heals
  return Status::Ok();
}

Status OvsdbClient::MonitorCancel(const Json& monitor_id) {
  std::string key = monitor_id.Dump();
  bool known = registrations_.erase(key) > 0;
  Result<JsonRpcMessage> response =
      Call("monitor_cancel", Json(Json::Array{monitor_id}));
  if (!response.ok()) {
    // Dead transport with healing off or exhausted: a dead session's
    // server half died with the socket, so cancelling a monitor we held
    // is a no-op success.  An id we never knew is still an error.
    return known ? Status::Ok() : response.status();
  }
  if (!response->error.is_null()) {
    // A heal mid-cancel re-registers only the surviving monitors, so the
    // retried cancel finds nothing server-side; that is success too.
    std::string error = response->error.Dump();
    if (known && error.find("no monitor") != std::string::npos) {
      return Status::Ok();
    }
    return FailedPrecondition("monitor_cancel error: " + error);
  }
  return Status::Ok();
}

Result<int> OvsdbClient::Poll() {
  Status status =
      fd_ < 0 ? FailedPrecondition("not connected") : ReadMore(/*timeout_ms=*/0);
  int healed = 0;
  if (!status.ok()) {
    if (!heal_.enabled) return status;
    NERPA_RETURN_IF_ERROR(Heal());
    healed = heal_delivered_;
  }
  return DeliverQueued() + healed;
}

Result<int> OvsdbClient::WaitForUpdate(int timeout_ms) {
  int waited = 0;
  while (true) {
    int delivered = DeliverQueued();
    if (delivered > 0) return delivered;
    if (waited >= timeout_ms) return 0;
    Status status =
        fd_ < 0 ? FailedPrecondition("not connected") : ReadMore(50);
    if (!status.ok()) {
      if (!heal_.enabled) return status;
      NERPA_RETURN_IF_ERROR(Heal());
      if (heal_delivered_ > 0) return heal_delivered_;
    }
    waited += 50;
  }
}

}  // namespace nerpa::ovsdb
