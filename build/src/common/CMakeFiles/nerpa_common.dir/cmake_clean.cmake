file(REMOVE_RECURSE
  "CMakeFiles/nerpa_common.dir/clock.cc.o"
  "CMakeFiles/nerpa_common.dir/clock.cc.o.d"
  "CMakeFiles/nerpa_common.dir/json.cc.o"
  "CMakeFiles/nerpa_common.dir/json.cc.o.d"
  "CMakeFiles/nerpa_common.dir/log.cc.o"
  "CMakeFiles/nerpa_common.dir/log.cc.o.d"
  "CMakeFiles/nerpa_common.dir/status.cc.o"
  "CMakeFiles/nerpa_common.dir/status.cc.o.d"
  "CMakeFiles/nerpa_common.dir/strings.cc.o"
  "CMakeFiles/nerpa_common.dir/strings.cc.o.d"
  "libnerpa_common.a"
  "libnerpa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nerpa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
