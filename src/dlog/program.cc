#include "dlog/program.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"
#include "dlog/eval.h"
#include "dlog/parser.h"

namespace nerpa::dlog {

namespace {

struct VarInfo {
  int slot = -1;
  Type type;
};

using Env = std::map<std::string, VarInfo>;

/// Bidirectional expression type checker.  Writes resolved_type/var_slot
/// into the (shared, mutable-annotated) Expr nodes.
class ExprChecker {
 public:
  /// `line`/`col` are the fallback span (the enclosing element) used when the
  /// expression under scrutiny carries no span of its own.
  ExprChecker(const Env& env, int line, int col)
      : env_(env), line_(line), col_(col) {}

  Result<Type> Check(const ExprPtr& expr,
                     const std::optional<Type>& expected) {
    // Errors report at the innermost spanned node, so point `current_` here
    // for the duration of this subtree.
    const Expr* previous = current_;
    if (expr->line > 0) current_ = expr.get();
    Result<Type> result = CheckImpl(expr, expected);
    if (result.ok() && expected && result.value() != *expected) {
      result = Error(StrFormat("expected %s, got %s for '%s'",
                               expected->ToString().c_str(),
                               result.value().ToString().c_str(),
                               expr->ToString().c_str()));
    }
    current_ = previous;
    if (!result.ok()) return result;
    expr->resolved_type = result.value();
    return result;
  }

 private:
  Status Error(const std::string& message) const {
    int line = current_ != nullptr ? current_->line : line_;
    int col = current_ != nullptr ? current_->col : col_;
    return TypeError(StrFormat("line %d:%d: %s", line, col, message.c_str()));
  }

  static bool IsBareIntLiteral(const ExprPtr& expr) {
    return expr->kind == Expr::Kind::kLit && expr->value.is_int() &&
           !expr->literal_type_known;
  }

  /// Types a pair of subexpressions that must agree (arithmetic operands,
  /// comparison operands, if/else branches), letting integer literals adapt.
  Result<Type> UnifyPair(const ExprPtr& lhs, const ExprPtr& rhs,
                         const std::optional<Type>& expected) {
    if (expected) {
      NERPA_RETURN_IF_ERROR(Check(lhs, expected).status());
      NERPA_RETURN_IF_ERROR(Check(rhs, expected).status());
      return *expected;
    }
    if (IsBareIntLiteral(lhs) && !IsBareIntLiteral(rhs)) {
      NERPA_ASSIGN_OR_RETURN(Type t, Check(rhs, std::nullopt));
      NERPA_RETURN_IF_ERROR(Check(lhs, t).status());
      return t;
    }
    NERPA_ASSIGN_OR_RETURN(Type t, Check(lhs, std::nullopt));
    NERPA_RETURN_IF_ERROR(Check(rhs, t).status());
    return t;
  }

  Result<Type> CheckImpl(const ExprPtr& expr,
                         const std::optional<Type>& expected) {
    switch (expr->kind) {
      case Expr::Kind::kWildcard:
        return Error("'_' is only allowed as a body-atom argument");
      case Expr::Kind::kVar: {
        auto it = env_.find(expr->name);
        if (it == env_.end()) {
          return Error("unbound variable '" + expr->name + "'");
        }
        expr->var_slot = it->second.slot;
        return it->second.type;
      }
      case Expr::Kind::kLit: {
        if (expr->literal_type_known) {
          return expr->literal_type;
        }
        if (expr->value.is_bool()) return Type::Bool();
        if (expr->value.is_string()) return Type::String();
        // Integer literal: adapt to the expected numeric type.
        if (expected && expected->kind == Type::Kind::kBit) {
          uint64_t raw = static_cast<uint64_t>(expr->value.as_int());
          if (expected->MaskBits(raw) != raw) {
            return Error(StrFormat("literal %lld does not fit in %s",
                                   static_cast<long long>(
                                       expr->value.as_int()),
                                   expected->ToString().c_str()));
          }
          return *expected;
        }
        return Type::Int();
      }
      case Expr::Kind::kUnary: {
        switch (expr->op1) {
          case UnOp::kNeg: {
            NERPA_ASSIGN_OR_RETURN(Type t, Check(expr->args[0], expected));
            if (!t.is_numeric()) return Error("unary '-' needs a number");
            return t;
          }
          case UnOp::kNot:
            NERPA_RETURN_IF_ERROR(Check(expr->args[0], Type::Bool()).status());
            return Type::Bool();
          case UnOp::kBitNot: {
            NERPA_ASSIGN_OR_RETURN(Type t, Check(expr->args[0], expected));
            if (t.kind != Type::Kind::kBit) return Error("'~' needs bit<N>");
            return t;
          }
        }
        return Error("bad unary operator");
      }
      case Expr::Kind::kBinary: {
        switch (expr->op2) {
          case BinOp::kAdd:
          case BinOp::kSub:
          case BinOp::kMul:
          case BinOp::kDiv:
          case BinOp::kMod: {
            NERPA_ASSIGN_OR_RETURN(
                Type t, UnifyPair(expr->args[0], expr->args[1], expected));
            if (!t.is_numeric()) {
              return Error(StrFormat("'%s' needs numeric operands, got %s",
                                     BinOpName(expr->op2),
                                     t.ToString().c_str()));
            }
            return t;
          }
          case BinOp::kBitAnd:
          case BinOp::kBitOr:
          case BinOp::kBitXor: {
            NERPA_ASSIGN_OR_RETURN(
                Type t, UnifyPair(expr->args[0], expr->args[1], expected));
            if (t.kind != Type::Kind::kBit) {
              return Error(StrFormat("'%s' needs bit<N> operands",
                                     BinOpName(expr->op2)));
            }
            return t;
          }
          case BinOp::kShl:
          case BinOp::kShr: {
            NERPA_ASSIGN_OR_RETURN(Type t, Check(expr->args[0], expected));
            if (!t.is_numeric()) return Error("shift needs numeric lhs");
            NERPA_ASSIGN_OR_RETURN(Type amount,
                                   Check(expr->args[1], std::nullopt));
            if (!amount.is_numeric()) return Error("shift amount not numeric");
            return t;
          }
          case BinOp::kEq:
          case BinOp::kNe:
          case BinOp::kLt:
          case BinOp::kLe:
          case BinOp::kGt:
          case BinOp::kGe: {
            NERPA_RETURN_IF_ERROR(
                UnifyPair(expr->args[0], expr->args[1], std::nullopt)
                    .status());
            return Type::Bool();
          }
          case BinOp::kAnd:
          case BinOp::kOr:
            NERPA_RETURN_IF_ERROR(Check(expr->args[0], Type::Bool()).status());
            NERPA_RETURN_IF_ERROR(Check(expr->args[1], Type::Bool()).status());
            return Type::Bool();
          case BinOp::kConcat:
            NERPA_RETURN_IF_ERROR(
                Check(expr->args[0], Type::String()).status());
            NERPA_RETURN_IF_ERROR(
                Check(expr->args[1], Type::String()).status());
            return Type::String();
        }
        return Error("bad binary operator");
      }
      case Expr::Kind::kCall: {
        std::vector<Type> arg_types;
        for (const ExprPtr& arg : expr->args) {
          NERPA_ASSIGN_OR_RETURN(Type t, Check(arg, std::nullopt));
          arg_types.push_back(std::move(t));
        }
        Result<Type> result = BuiltinResultType(expr->name, arg_types);
        if (!result.ok()) {
          return Error(result.status().message());
        }
        return std::move(result).value();
      }
      case Expr::Kind::kTuple: {
        std::vector<Type> elems;
        for (size_t i = 0; i < expr->args.size(); ++i) {
          std::optional<Type> elem_expected;
          if (expected && expected->kind == Type::Kind::kTuple &&
              expected->elems.size() == expr->args.size()) {
            elem_expected = expected->elems[i];
          }
          NERPA_ASSIGN_OR_RETURN(Type t, Check(expr->args[i], elem_expected));
          elems.push_back(std::move(t));
        }
        return Type::Tuple(std::move(elems));
      }
      case Expr::Kind::kCond: {
        NERPA_RETURN_IF_ERROR(Check(expr->args[0], Type::Bool()).status());
        return UnifyPair(expr->args[1], expr->args[2], expected);
      }
      case Expr::Kind::kCast: {
        NERPA_ASSIGN_OR_RETURN(Type from, Check(expr->args[0], std::nullopt));
        const Type& to = expr->literal_type;
        if (!from.is_numeric() || !to.is_numeric()) {
          return Error(StrFormat("cannot cast %s to %s",
                                 from.ToString().c_str(),
                                 to.ToString().c_str()));
        }
        return to;
      }
    }
    return Error("bad expression");
  }

  const Env& env_;
  int line_;
  int col_;
  const Expr* current_ = nullptr;  // innermost spanned node being checked
};

/// Tarjan strongly-connected components over the relation dependency graph.
class Tarjan {
 public:
  explicit Tarjan(const std::vector<std::vector<int>>& edges)
      : edges_(edges),
        index_(edges.size(), -1),
        low_(edges.size(), -1),
        on_stack_(edges.size(), false) {}

  /// Returns the SCCs of the graph.  With edges directed body -> head,
  /// Tarjan emits *sinks first* (heads before the relations they read), so
  /// callers must reverse for evaluation order.
  std::vector<std::vector<int>> Run() {
    for (size_t v = 0; v < edges_.size(); ++v) {
      if (index_[v] < 0) Visit(static_cast<int>(v));
    }
    return components_;
  }

 private:
  void Visit(int v) {
    index_[static_cast<size_t>(v)] = low_[static_cast<size_t>(v)] = counter_++;
    stack_.push_back(v);
    on_stack_[static_cast<size_t>(v)] = true;
    for (int w : edges_[static_cast<size_t>(v)]) {
      if (index_[static_cast<size_t>(w)] < 0) {
        Visit(w);
        low_[static_cast<size_t>(v)] =
            std::min(low_[static_cast<size_t>(v)], low_[static_cast<size_t>(w)]);
      } else if (on_stack_[static_cast<size_t>(w)]) {
        low_[static_cast<size_t>(v)] =
            std::min(low_[static_cast<size_t>(v)], index_[static_cast<size_t>(w)]);
      }
    }
    if (low_[static_cast<size_t>(v)] == index_[static_cast<size_t>(v)]) {
      std::vector<int> component;
      while (true) {
        int w = stack_.back();
        stack_.pop_back();
        on_stack_[static_cast<size_t>(w)] = false;
        component.push_back(w);
        if (w == v) break;
      }
      components_.push_back(std::move(component));
    }
  }

  const std::vector<std::vector<int>>& edges_;
  std::vector<int> index_, low_;
  std::vector<bool> on_stack_;
  std::vector<int> stack_;
  std::vector<std::vector<int>> components_;
  int counter_ = 0;
};

}  // namespace

std::string CompiledRule::ToString() const {
  return StrFormat("rule #%d (line %d), head relation %d, %zu steps", index,
                   line, head_relation, steps.size());
}

int Program::FindRelation(std::string_view name) const {
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

/// The compiler proper: turns a ProgramAst into a Program.
class Compiler {
 public:
  explicit Compiler(ProgramAst ast) { program_.ast_ = std::move(ast); }

  Result<std::shared_ptr<const Program>> Run() {
    NERPA_RETURN_IF_ERROR(CollectRelations());
    NERPA_RETURN_IF_ERROR(CompileRules());
    NERPA_RETURN_IF_ERROR(Stratify());
    NERPA_RETURN_IF_ERROR(BuildPlans());
    return std::make_shared<const Program>(std::move(program_));
  }

 private:
  Status CollectRelations() {
    for (const RelationDecl& decl : program_.ast_.relations) {
      if (!decl.name.empty() &&
          !std::isupper(static_cast<unsigned char>(decl.name[0]))) {
        return TypeError("relation names must be capitalized: '" + decl.name +
                         "'");
      }
      program_.relations_.push_back(decl);
    }
    program_.arrangements_.resize(program_.relations_.size());
    return Status::Ok();
  }

  Status CompileRules() {
    for (const Rule& rule : program_.ast_.rules) {
      NERPA_RETURN_IF_ERROR(CompileRule(rule));
    }
    return Status::Ok();
  }

  Status RuleError(const Rule& rule, const std::string& message) {
    // Expression-level errors already carry a more precise span; keep it
    // rather than stacking the rule's span in front.
    if (message.rfind("line ", 0) == 0) {
      return TypeError(StrFormat("%s (in rule: %s)", message.c_str(),
                                 rule.ToString().c_str()));
    }
    return TypeError(StrFormat("line %d:%d: %s (in rule: %s)", rule.line,
                               rule.col, message.c_str(),
                               rule.ToString().c_str()));
  }

  Status CompileRule(const Rule& rule) {
    CompiledRule out;
    out.index = static_cast<int>(program_.rules_.size());
    out.line = rule.line;
    out.col = rule.col;
    out.head_relation = program_.FindRelation(rule.head.relation);
    if (out.head_relation < 0) {
      return RuleError(rule, "unknown relation '" + rule.head.relation + "'");
    }
    const RelationDecl& head_decl =
        program_.relation(out.head_relation);
    if (head_decl.role == RelationRole::kInput) {
      return RuleError(rule,
                       "input relation '" + head_decl.name +
                           "' cannot appear in a rule head");
    }
    if (rule.head.terms.size() != head_decl.columns.size()) {
      return RuleError(
          rule, StrFormat("head arity %zu does not match relation arity %zu",
                          rule.head.terms.size(), head_decl.columns.size()));
    }

    Env env;
    int next_slot = 0;

    // Body steps.
    for (size_t elem_index = 0; elem_index < rule.body.size(); ++elem_index) {
      const BodyElem& elem = rule.body[elem_index];
      if (out.has_aggregate) {
        return RuleError(rule, "the aggregate must be the last body element");
      }
      StepPlan step;
      step.kind = elem.kind;
      switch (elem.kind) {
        case BodyElem::Kind::kLiteral: {
          step.relation = program_.FindRelation(elem.atom.relation);
          if (step.relation < 0) {
            return RuleError(rule, "unknown relation '" + elem.atom.relation +
                                       "'");
          }
          step.negated = elem.negated;
          const RelationDecl& decl = program_.relation(step.relation);
          if (elem.atom.terms.size() != decl.columns.size()) {
            return RuleError(
                rule, StrFormat("atom %s has arity %zu, relation has %zu",
                                elem.atom.ToString().c_str(),
                                elem.atom.terms.size(), decl.columns.size()));
          }
          for (size_t p = 0; p < elem.atom.terms.size(); ++p) {
            const ExprPtr& term = elem.atom.terms[p];
            const Type& col_type = decl.columns[p].type;
            TermPlan tp;
            if (term->kind == Expr::Kind::kWildcard) {
              tp.kind = TermPlan::Kind::kIgnore;
            } else if (term->kind == Expr::Kind::kVar) {
              auto it = env.find(term->name);
              if (it != env.end()) {
                if (it->second.type != col_type) {
                  return RuleError(
                      rule,
                      StrFormat("variable '%s' is %s but column %s.%s is %s",
                                term->name.c_str(),
                                it->second.type.ToString().c_str(),
                                decl.name.c_str(), decl.columns[p].name.c_str(),
                                col_type.ToString().c_str()));
                }
                tp.kind = TermPlan::Kind::kCheckVar;
                tp.slot = it->second.slot;
              } else {
                if (elem.negated) {
                  return RuleError(rule, "variable '" + term->name +
                                             "' is unbound in negated atom");
                }
                tp.kind = TermPlan::Kind::kBind;
                tp.slot = next_slot++;
                env[term->name] = VarInfo{tp.slot, col_type};
              }
              term->var_slot = tp.slot;
              term->resolved_type = col_type;
            } else if (term->kind == Expr::Kind::kLit ||
                       (term->kind == Expr::Kind::kUnary &&
                        term->op1 == UnOp::kNeg &&
                        term->args[0]->kind == Expr::Kind::kLit)) {
              ExprChecker checker(env, elem.line, elem.col);
              NERPA_RETURN_IF_ERROR(checker.Check(term, col_type).status());
              Result<Value> value = EvalExpr(*term, {});
              if (!value.ok()) return value.status();
              tp.kind = TermPlan::Kind::kCheckConst;
              tp.constant = std::move(value).value();
            } else {
              return RuleError(rule,
                               "body atom arguments must be variables, "
                               "literals, or '_': " +
                                   term->ToString());
            }
            step.terms.push_back(std::move(tp));
          }
          break;
        }
        case BodyElem::Kind::kCondition: {
          ExprChecker checker(env, elem.line, elem.col);
          NERPA_RETURN_IF_ERROR(
              checker.Check(elem.condition, Type::Bool()).status());
          step.condition = elem.condition;
          break;
        }
        case BodyElem::Kind::kAssignment: {
          if (env.count(elem.var) != 0) {
            return RuleError(rule,
                             "variable '" + elem.var + "' is already bound");
          }
          ExprChecker checker(env, elem.line, elem.col);
          NERPA_ASSIGN_OR_RETURN(Type t,
                                 checker.Check(elem.expr, std::nullopt));
          step.slot = next_slot++;
          step.expr = elem.expr;
          env[elem.var] = VarInfo{step.slot, std::move(t)};
          break;
        }
        case BodyElem::Kind::kFlatMap: {
          if (env.count(elem.var) != 0) {
            return RuleError(rule,
                             "variable '" + elem.var + "' is already bound");
          }
          ExprChecker checker(env, elem.line, elem.col);
          NERPA_ASSIGN_OR_RETURN(Type t,
                                 checker.Check(elem.expr, std::nullopt));
          if (t.kind != Type::Kind::kVec) {
            return RuleError(rule, "'var " + elem.var +
                                       " in ...' needs a Vec<...> expression");
          }
          step.slot = next_slot++;
          step.expr = elem.expr;
          env[elem.var] = VarInfo{step.slot, t.elems[0]};
          break;
        }
        case BodyElem::Kind::kAggregate: {
          if (env.count(elem.var) != 0) {
            return RuleError(rule,
                             "variable '" + elem.var + "' is already bound");
          }
          ExprChecker checker(env, elem.line, elem.col);
          NERPA_ASSIGN_OR_RETURN(Type arg_type,
                                 checker.Check(elem.expr, std::nullopt));
          if (elem.agg_func != AggFunc::kCount && !arg_type.is_numeric()) {
            return RuleError(rule, std::string(AggFuncName(elem.agg_func)) +
                                       " needs a numeric argument");
          }
          step.agg_func = elem.agg_func;
          step.agg_arg = elem.expr;
          for (const std::string& var : elem.group_by) {
            auto it = env.find(var);
            if (it == env.end()) {
              return RuleError(rule, "group_by variable '" + var +
                                         "' is unbound");
            }
            step.group_slots.push_back(it->second.slot);
          }
          for (const auto& [name, info] : env) {
            step.binding_slots.push_back(info.slot);
          }
          std::sort(step.binding_slots.begin(), step.binding_slots.end());
          step.result_type = elem.agg_func == AggFunc::kCount
                                 ? Type::Int()
                                 : arg_type;
          step.result_slot = next_slot++;
          step.agg_state_index = program_.aggregate_state_count_++;
          // Aggregation consumes the group: only the group-by variables and
          // the result stay in scope.
          Env post;
          for (const std::string& var : elem.group_by) {
            post[var] = env[var];
          }
          post[elem.var] = VarInfo{step.result_slot, step.result_type};
          env = std::move(post);
          out.has_aggregate = true;
          out.aggregate_step = static_cast<int>(out.steps.size());
          break;
        }
      }
      out.steps.push_back(std::move(step));
    }

    // Head expressions.
    for (size_t c = 0; c < rule.head.terms.size(); ++c) {
      ExprChecker checker(env, rule.head.line, rule.head.col);
      Status s =
          checker.Check(rule.head.terms[c], head_decl.columns[c].type)
              .status();
      if (!s.ok()) return RuleError(rule, s.message());
      out.head_exprs.push_back(rule.head.terms[c]);
    }
    out.frame_size = next_slot;

    // Head fast path: all-bare-variable heads gather the row from frame
    // slots directly at emit time.
    out.head_all_vars = true;
    for (const ExprPtr& term : rule.head.terms) {
      if (term->kind != Expr::Kind::kVar || term->var_slot < 0) {
        out.head_all_vars = false;
        break;
      }
    }
    if (out.head_all_vars) {
      for (const ExprPtr& term : rule.head.terms) {
        out.head_var_slots.push_back(term->var_slot);
      }
    }

    // Head pattern (for DRed re-derivation): valid when every head term is
    // a plain variable, a constant, or an affine bigint term `var + k` /
    // `var - k` (invertible: matching binds var = value -+ k).
    out.head_invertible = true;
    std::set<int> seen_slots;
    for (size_t c = 0; c < rule.head.terms.size(); ++c) {
      const ExprPtr& term = rule.head.terms[c];
      TermPlan tp;
      const Expr* var_part = nullptr;
      int64_t offset = 0;
      if (term->kind == Expr::Kind::kVar) {
        var_part = term.get();
      } else if (term->kind == Expr::Kind::kBinary &&
                 (term->op2 == BinOp::kAdd || term->op2 == BinOp::kSub) &&
                 term->resolved_type.kind == Type::Kind::kInt) {
        const Expr* lhs = term->args[0].get();
        const Expr* rhs = term->args[1].get();
        if (lhs->kind == Expr::Kind::kVar && rhs->kind == Expr::Kind::kLit &&
            rhs->value.is_int()) {
          var_part = lhs;
          offset = term->op2 == BinOp::kAdd ? rhs->value.as_int()
                                            : -rhs->value.as_int();
        } else if (term->op2 == BinOp::kAdd &&
                   rhs->kind == Expr::Kind::kVar &&
                   lhs->kind == Expr::Kind::kLit && lhs->value.is_int()) {
          var_part = rhs;
          offset = lhs->value.as_int();
        }
      }
      if (var_part != nullptr && var_part->var_slot >= 0) {
        if (seen_slots.insert(var_part->var_slot).second) {
          tp.kind = TermPlan::Kind::kBind;
        } else {
          tp.kind = TermPlan::Kind::kCheckVar;
          if (offset != 0) {
            // `R(h, h + 1)`-style double use with offsets is out of scope.
            out.head_invertible = false;
            break;
          }
        }
        tp.slot = var_part->var_slot;
        tp.offset = offset;
      } else if (term->kind == Expr::Kind::kLit) {
        Result<Value> value = EvalExpr(*term, {});
        if (!value.ok()) return value.status();
        tp.kind = TermPlan::Kind::kCheckConst;
        tp.constant = std::move(value).value();
      } else {
        out.head_invertible = false;
        break;
      }
      out.head_pattern.push_back(std::move(tp));
    }
    if (!out.head_invertible) out.head_pattern.clear();

    program_.rules_.push_back(std::move(out));
    return Status::Ok();
  }

  Status Stratify() {
    size_t n = program_.relations_.size();
    std::vector<std::vector<int>> edges(n);       // body -> head
    // Edges that must cross strata, with the span of the first offending
    // rule for diagnostics.
    std::map<std::pair<int, int>, std::pair<int, int>> strict_edges;

    for (const CompiledRule& rule : program_.rules_) {
      for (const StepPlan& step : rule.steps) {
        if (step.kind != BodyElem::Kind::kLiteral) continue;
        edges[static_cast<size_t>(step.relation)].push_back(
            rule.head_relation);
        if (step.negated || rule.has_aggregate) {
          strict_edges.emplace(std::pair<int, int>{step.relation,
                                                   rule.head_relation},
                               std::pair<int, int>{rule.line, rule.col});
        }
      }
    }

    Tarjan tarjan(edges);
    std::vector<std::vector<int>> sccs = tarjan.Run();
    // Dependency order: a relation's SCC must be evaluated after every SCC
    // it reads from.
    std::reverse(sccs.begin(), sccs.end());

    std::vector<int> scc_of(n, -1);
    for (size_t s = 0; s < sccs.size(); ++s) {
      for (int r : sccs[s]) scc_of[static_cast<size_t>(r)] = static_cast<int>(s);
    }
    for (const auto& [edge, span] : strict_edges) {
      const auto& [from, to] = edge;
      if (scc_of[static_cast<size_t>(from)] == scc_of[static_cast<size_t>(to)]) {
        return TypeError(StrFormat(
            "line %d:%d: program is not stratifiable: relation '%s' depends "
            "on '%s' through negation or aggregation inside a recursive cycle",
            span.first, span.second, program_.relation(to).name.c_str(),
            program_.relation(from).name.c_str()));
      }
    }

    program_.stratum_of_.assign(n, -1);
    for (const std::vector<int>& scc : sccs) {
      // Skip SCCs that contain only underived relations (pure inputs).
      bool has_rules = false;
      for (const CompiledRule& rule : program_.rules_) {
        if (std::find(scc.begin(), scc.end(), rule.head_relation) !=
            scc.end()) {
          has_rules = true;
          break;
        }
      }
      bool only_inputs = true;
      for (int r : scc) {
        if (program_.relation(r).role != RelationRole::kInput) {
          only_inputs = false;
        }
      }
      if (only_inputs) {
        if (has_rules) {
          return Internal("rule with input head escaped earlier check");
        }
        continue;
      }
      Stratum stratum;
      stratum.relations = scc;
      std::sort(stratum.relations.begin(), stratum.relations.end());
      for (const CompiledRule& rule : program_.rules_) {
        if (std::find(scc.begin(), scc.end(), rule.head_relation) !=
            scc.end()) {
          stratum.rules.push_back(rule.index);
        }
      }
      // Recursive iff multi-relation SCC or a self-referencing rule.
      stratum.recursive = scc.size() > 1;
      if (!stratum.recursive) {
        for (int rule_index : stratum.rules) {
          const CompiledRule& rule = program_.rules_[static_cast<size_t>(rule_index)];
          for (const StepPlan& step : rule.steps) {
            if (step.kind == BodyElem::Kind::kLiteral &&
                step.relation == rule.head_relation) {
              stratum.recursive = true;
            }
          }
        }
      }
      if (stratum.recursive) {
        // DRed re-derivation binds head values backwards; require it.
        for (int rule_index : stratum.rules) {
          const CompiledRule& rule = program_.rules_[static_cast<size_t>(rule_index)];
          if (!rule.head_invertible) {
            return TypeError(StrFormat(
                "line %d:%d: rules in a recursive cycle must have plain "
                "variables or constants in the head",
                rule.line, rule.col));
          }
          if (rule.has_aggregate) {
            return TypeError(StrFormat(
                "line %d:%d: aggregates are not allowed in recursive rules",
                rule.line, rule.col));
          }
        }
      }
      int stratum_index = static_cast<int>(program_.strata_.size());
      for (int r : scc) {
        program_.stratum_of_[static_cast<size_t>(r)] = stratum_index;
      }
      program_.strata_.push_back(std::move(stratum));
    }
    return Status::Ok();
  }

  /// Registers an arrangement on `relation` with the given (sorted) key
  /// positions, deduplicating; returns its id, or -1 for an empty key.
  int RegisterArrangement(int relation, std::vector<int> key_positions) {
    if (key_positions.empty()) return -1;
    std::sort(key_positions.begin(), key_positions.end());
    auto& specs = program_.arrangements_[static_cast<size_t>(relation)];
    for (size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].key_positions == key_positions) return static_cast<int>(i);
    }
    specs.push_back(ArrangementSpec{std::move(key_positions)});
    return static_cast<int>(specs.size()) - 1;
  }

  /// Builds the lookup plan for `step` given the currently-bound slots, and
  /// adds the slots the step binds.
  LookupPlan PlanLookup(int step_index, const StepPlan& step,
                        std::set<int>& bound) {
    LookupPlan plan;
    plan.step_index = step_index;
    for (size_t p = 0; p < step.terms.size(); ++p) {
      const TermPlan& term = step.terms[p];
      bool known = term.kind == TermPlan::Kind::kCheckConst ||
                   ((term.kind == TermPlan::Kind::kCheckVar ||
                     term.kind == TermPlan::Kind::kBind) &&
                    bound.count(term.slot) != 0);
      if (known) plan.key_positions.push_back(static_cast<int>(p));
    }
    plan.arrangement = RegisterArrangement(step.relation, plan.key_positions);
    std::sort(plan.key_positions.begin(), plan.key_positions.end());
    for (const TermPlan& term : step.terms) {
      if (term.kind == TermPlan::Kind::kBind ||
          term.kind == TermPlan::Kind::kCheckVar) {
        bound.insert(term.slot);
      }
    }
    return plan;
  }

  void AddNonLiteralBindings(const StepPlan& step, std::set<int>& bound) {
    if (step.kind == BodyElem::Kind::kAssignment ||
        step.kind == BodyElem::Kind::kFlatMap) {
      bound.insert(step.slot);
    }
    if (step.kind == BodyElem::Kind::kAggregate) {
      bound.insert(step.result_slot);
    }
  }

  Status BuildPlans() {
    for (CompiledRule& rule : program_.rules_) {
      // Full plan: original order.
      {
        std::set<int> bound;
        for (size_t s = 0; s < rule.steps.size(); ++s) {
          const StepPlan& step = rule.steps[s];
          if (step.kind == BodyElem::Kind::kLiteral) {
            rule.full_plan.lookups.push_back(
                PlanLookup(static_cast<int>(s), step, bound));
          } else {
            AddNonLiteralBindings(step, bound);
          }
        }
      }
      // Delta plans: one per literal step (before the aggregate, if any).
      for (size_t pin = 0; pin < rule.steps.size(); ++pin) {
        const StepPlan& pinned = rule.steps[pin];
        if (pinned.kind != BodyElem::Kind::kLiteral) continue;
        if (rule.has_aggregate &&
            static_cast<int>(pin) > rule.aggregate_step) {
          continue;  // unreachable by construction, kept for safety
        }
        DeltaPlan plan;
        plan.pinned_step = static_cast<int>(pin);
        std::set<int> bound;
        // The pinned literal provides values at every non-ignored position;
        // for a negated pin, only at its key (non-ignored) positions —
        // which is the same set, since negated atoms have no kBind terms.
        for (const TermPlan& term : pinned.terms) {
          if (term.slot >= 0) bound.insert(term.slot);
        }
        for (size_t s = 0; s < rule.steps.size(); ++s) {
          if (s == pin) continue;
          const StepPlan& step = rule.steps[s];
          if (step.kind == BodyElem::Kind::kLiteral) {
            plan.lookups.push_back(PlanLookup(static_cast<int>(s), step, bound));
          } else {
            AddNonLiteralBindings(step, bound);
          }
        }
        // The pinned negated literal itself also needs an arrangement for
        // flip tracking, keyed on its non-ignored positions.
        if (pinned.negated) {
          std::vector<int> key;
          for (size_t p = 0; p < pinned.terms.size(); ++p) {
            if (pinned.terms[p].kind != TermPlan::Kind::kIgnore) {
              key.push_back(static_cast<int>(p));
            }
          }
          plan.pinned_arrangement =
              RegisterArrangement(pinned.relation, std::move(key));
        }
        rule.delta_plans.push_back(std::move(plan));
      }
      // Re-derivation plan (only meaningful for invertible heads).
      if (rule.head_invertible) {
        std::set<int> bound;
        for (const TermPlan& term : rule.head_pattern) {
          if (term.slot >= 0) bound.insert(term.slot);
        }
        for (size_t s = 0; s < rule.steps.size(); ++s) {
          const StepPlan& step = rule.steps[s];
          if (step.kind == BodyElem::Kind::kLiteral) {
            rule.rederive_plan.lookups.push_back(
                PlanLookup(static_cast<int>(s), step, bound));
          } else {
            AddNonLiteralBindings(step, bound);
          }
        }
      }
      // Negation presence checks in non-pinned positions also need their
      // arrangements; PlanLookup above already registered them (key =
      // non-ignored positions, since negated terms are always bound).
    }
    return Status::Ok();
  }

  Program program_;
};

Result<std::shared_ptr<const Program>> Program::Parse(
    std::string_view source) {
  NERPA_ASSIGN_OR_RETURN(ProgramAst ast, ParseProgram(source));
  return Compile(std::move(ast));
}

Result<std::shared_ptr<const Program>> Program::Compile(ProgramAst ast) {
  return Compiler(std::move(ast)).Run();
}

}  // namespace nerpa::dlog
