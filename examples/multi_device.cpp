// Multi-device deployment: device-column bindings route table entries to
// the switch each row names (§4.1: "our solution can generally support
// multiple classes of devices").
//
// Unlike the other examples this one wires a stack from scratch — schema,
// pipeline, bindings, rules, controller — showing exactly what a user
// writes for their own network program.
//
//   $ ./build/examples/multi_device
// The schema, pipeline, and rules live in stacks.cc so
// `nerpa_check --builtin multi_device` and the golden tests analyze exactly
// what this demo runs.
#include <cstdio>

#include "nerpa/controller.h"
#include "stacks.h"

using namespace nerpa;

int main() {
  ovsdb::Database db(examples::MultiDeviceSchema());
  auto pipeline = examples::MultiDevicePipeline();

  // Device-aware bindings: digest inputs and table outputs get a leading
  // `device: string` column the controller routes on.
  BindingOptions options;
  options.with_device_column = true;
  auto bindings = GenerateBindings(db.schema(), *pipeline, options);
  if (!bindings.ok()) {
    std::fprintf(stderr, "%s\n", bindings.status().ToString().c_str());
    return 1;
  }
  std::string source = bindings->DeclsText() + examples::MultiDeviceRules();
  std::printf("control plane program:\n%s\n", source.c_str());
  auto program = dlog::Program::Parse(source);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }

  // Two leaf switches running the same pipeline.
  p4::Switch leaf0(pipeline), leaf1(pipeline);
  p4::RuntimeClient client0(&leaf0), client1(&leaf1);
  Controller controller(&db, *program, pipeline, *bindings);
  (void)controller.AddDevice("leaf0", &client0);
  (void)controller.AddDevice("leaf1", &client1);
  Status started = controller.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }

  // Three assignments, routed by the device column.
  ovsdb::TxnBuilder txn(&db);
  txn.Insert("Assignment", {{"device", ovsdb::Datum::String("leaf0")},
                            {"port", ovsdb::Datum::Integer(1)},
                            {"vlan", ovsdb::Datum::Integer(10)}});
  txn.Insert("Assignment", {{"device", ovsdb::Datum::String("leaf0")},
                            {"port", ovsdb::Datum::Integer(2)},
                            {"vlan", ovsdb::Datum::Integer(20)}});
  txn.Insert("Assignment", {{"device", ovsdb::Datum::String("leaf1")},
                            {"port", ovsdb::Datum::Integer(1)},
                            {"vlan", ovsdb::Datum::Integer(30)}});
  if (!txn.Commit().ok() || !controller.last_error().ok()) {
    std::fprintf(stderr, "transaction failed: %s\n",
                 controller.last_error().ToString().c_str());
    return 1;
  }

  std::printf("leaf0 VlanMap entries: %zu   leaf1 VlanMap entries: %zu\n",
              leaf0.GetTable("VlanMap")->size(),
              leaf1.GetTable("VlanMap")->size());
  for (const p4::TableEntry* entry : leaf0.GetTable("VlanMap")->Entries()) {
    std::printf("  leaf0: %s\n", entry->ToString().c_str());
  }
  for (const p4::TableEntry* entry : leaf1.GetTable("VlanMap")->Entries()) {
    std::printf("  leaf1: %s\n", entry->ToString().c_str());
  }

  // Move the leaf1 assignment to leaf0: the entry migrates between devices
  // in one incremental step.
  ovsdb::TxnBuilder move(&db);
  move.Update("Assignment",
              {{"device", "==", ovsdb::Datum::String("leaf1")}},
              {{"device", ovsdb::Datum::String("leaf0")},
               {"port", ovsdb::Datum::Integer(7)}});
  if (!move.Commit().ok() || !controller.last_error().ok()) return 1;
  std::printf("\nafter moving the assignment to leaf0 port 7:\n");
  std::printf("leaf0 VlanMap entries: %zu   leaf1 VlanMap entries: %zu\n",
              leaf0.GetTable("VlanMap")->size(),
              leaf1.GetTable("VlanMap")->size());
  return 0;
}
