#include "gateway/admission.h"

#include <algorithm>
#include <cmath>

namespace nerpa::gateway {

const char* PriorityName(Priority priority) {
  switch (priority) {
    case Priority::kHealth: return "health";
    case Priority::kCachedRead: return "cached-read";
    case Priority::kRead: return "read";
    case Priority::kTransact: return "transact";
  }
  return "unknown";
}

AdmissionController::AdmissionController(double rate_per_sec, double burst,
                                         size_t max_inflight)
    : rate_per_sec_(rate_per_sec),
      burst_(burst),
      max_inflight_(max_inflight),
      tokens_(burst),
      limit_(static_cast<double>(max_inflight)) {}

void AdmissionController::set_tuning(const Tuning& tuning) {
  std::lock_guard<std::mutex> lock(mu_);
  tuning_ = tuning;
}

bool AdmissionController::TryAdmit(int64_t now_ns, Priority priority) {
  std::lock_guard<std::mutex> lock(mu_);
  return TryAdmitLocked(now_ns, priority);
}

bool AdmissionController::TryAdmitLocked(int64_t now_ns, Priority priority) {
  // Health probes answer whether the gateway is alive; shedding them
  // would turn overload into a (false) liveness failure.
  if (priority == Priority::kHealth) {
    ++inflight_;
    ++admitted_;
    return true;
  }
  if (max_inflight_ > 0) {
    double cap = std::min(limit_, static_cast<double>(max_inflight_));
    if (priority == Priority::kTransact) cap *= tuning_.transact_fraction;
    cap = std::max(cap, 1.0);
    if (static_cast<double>(inflight_) >= cap) {
      RecordShedLocked(now_ns, priority);
      return false;
    }
  }
  if (rate_per_sec_ > 0) {
    if (last_refill_ns_ == 0) last_refill_ns_ = now_ns;
    if (now_ns > last_refill_ns_) {
      double elapsed_sec =
          static_cast<double>(now_ns - last_refill_ns_) * 1e-9;
      tokens_ = std::min(burst_, tokens_ + elapsed_sec * rate_per_sec_);
      last_refill_ns_ = now_ns;
    }
    if (tokens_ < 1.0) {
      RecordShedLocked(now_ns, priority);
      return false;
    }
    tokens_ -= 1.0;
  }
  ++inflight_;
  ++admitted_;
  return true;
}

void AdmissionController::RecordShedLocked(int64_t now_ns, Priority priority) {
  ++shed_;
  ++shed_by_priority_[static_cast<size_t>(priority)];
  // Two-bucket sliding window: the current bucket plus the previous one
  // approximate "sheds within the trailing window" without a ring.
  if (window_start_ns_ == 0 ||
      now_ns - window_start_ns_ >= tuning_.brownout_window_nanos) {
    prev_window_sheds_ =
        (now_ns - window_start_ns_ >= 2 * tuning_.brownout_window_nanos)
            ? 0
            : window_sheds_;
    window_sheds_ = 0;
    window_start_ns_ = now_ns;
  }
  ++window_sheds_;
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ > 0) --inflight_;
}

void AdmissionController::OnOutcome(int64_t now_ns, int64_t latency_nanos,
                                    bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ > 0) --inflight_;
  if (max_inflight_ == 0) return;  // adaptation disabled with the cap
  if (latency_nanos < 0) latency_nanos = 0;
  ewma_latency_ns_ = ewma_latency_ns_ == 0
                         ? latency_nanos
                         : (ewma_latency_ns_ * 7 + latency_nanos) / 8;
  if (ok) {
    // The floor tracks the best latency the backend has shown; decay it
    // slowly upward so a permanently slower backend re-baselines instead
    // of being punished forever.
    floor_latency_ns_ =
        floor_latency_ns_ == 0
            ? latency_nanos
            : std::min<int64_t>(latency_nanos,
                                floor_latency_ns_ + floor_latency_ns_ / 256 + 1);
  }
  int64_t threshold = std::max<int64_t>(
      tuning_.latency_slack_nanos,
      static_cast<int64_t>(static_cast<double>(floor_latency_ns_) *
                           tuning_.latency_tolerance));
  bool degraded = !ok || (floor_latency_ns_ > 0 && ewma_latency_ns_ > threshold);
  if (degraded) {
    if (now_ns - last_decrease_ns_ >= tuning_.decrease_interval_nanos) {
      limit_ = std::max(tuning_.min_limit, limit_ * tuning_.decrease_factor);
      last_decrease_ns_ = now_ns;
      ++limit_decreases_;
    }
  } else {
    // Additive increase, amortized: ~1 slot per `limit_` healthy calls.
    limit_ = std::min(static_cast<double>(max_inflight_),
                      limit_ + 1.0 / std::max(limit_, 1.0));
  }
}

int AdmissionController::RetryAfterSeconds(int64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  return RetryAfterSecondsLocked(now_ns);
}

int AdmissionController::RetryAfterSecondsLocked(int64_t now_ns) const {
  double wait_sec = 0;
  if (rate_per_sec_ > 0 && tokens_ < 1.0) {
    // Refill since the last observation may already cover the deficit.
    double tokens = tokens_;
    if (last_refill_ns_ != 0 && now_ns > last_refill_ns_) {
      tokens = std::min(
          burst_, tokens + static_cast<double>(now_ns - last_refill_ns_) *
                               1e-9 * rate_per_sec_);
    }
    if (tokens < 1.0) wait_sec = (1.0 - tokens) / rate_per_sec_;
  }
  if (max_inflight_ > 0 && static_cast<double>(inflight_) >= limit_ &&
      ewma_latency_ns_ > 0) {
    // Every `limit_` concurrent calls drain in ~one EWMA latency; the
    // backlog above the limit drains in proportion.
    double excess = static_cast<double>(inflight_) - limit_ + 1.0;
    double drain_sec = static_cast<double>(ewma_latency_ns_) * 1e-9 * excess /
                       std::max(limit_, 1.0);
    wait_sec = std::max(wait_sec, drain_sec);
  }
  int seconds = static_cast<int>(std::ceil(wait_sec));
  return std::clamp(seconds, 1, 30);
}

bool AdmissionController::InBrownout(int64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (window_start_ns_ == 0) return false;
  int64_t age = now_ns - window_start_ns_;
  uint64_t recent;
  if (age < tuning_.brownout_window_nanos) {
    recent = window_sheds_ + prev_window_sheds_;
  } else if (age < 2 * tuning_.brownout_window_nanos) {
    recent = window_sheds_;  // current bucket aged into "previous"
  } else {
    recent = 0;
  }
  return recent >= tuning_.brownout_sheds;
}

uint64_t AdmissionController::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

uint64_t AdmissionController::shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

uint64_t AdmissionController::shed_by_priority(Priority priority) const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_by_priority_[static_cast<size_t>(priority)];
}

size_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

double AdmissionController::limit() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_inflight_ == 0 ? 0 : std::min(limit_,
                                           static_cast<double>(max_inflight_));
}

int64_t AdmissionController::ewma_latency_nanos() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_latency_ns_;
}

uint64_t AdmissionController::limit_decreases() const {
  std::lock_guard<std::mutex> lock(mu_);
  return limit_decreases_;
}

}  // namespace nerpa::gateway
