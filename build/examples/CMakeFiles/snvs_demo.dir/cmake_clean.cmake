file(REMOVE_RECURSE
  "CMakeFiles/snvs_demo.dir/snvs_demo.cpp.o"
  "CMakeFiles/snvs_demo.dir/snvs_demo.cpp.o.d"
  "snvs_demo"
  "snvs_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snvs_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
