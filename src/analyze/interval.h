// Integer intervals for the static range analysis (abstract interpretation
// over the control-plane rules).
//
// The lattice is the usual interval domain over signed 128-bit integers with
// saturation: every operation clamps into [kMin, kMax], so widening chains
// terminate even for unbounded recursions.  128 bits comfortably hold any
// value a dlog program can produce (bigint is int64-backed, bit<N> caps at
// 64 bits) plus headroom for sums/products before saturation kicks in.
#ifndef NERPA_ANALYZE_INTERVAL_H_
#define NERPA_ANALYZE_INTERVAL_H_

#include <cstdint>
#include <string>

#include "dlog/type.h"

namespace nerpa::analyze {

using Int = __int128;

struct Interval {
  // Saturation bounds: far beyond anything representable by dlog values but
  // with room to spare for one more arithmetic op without overflowing the
  // 128-bit carrier.
  static constexpr Int kMax = Int{1} << 100;
  static constexpr Int kMin = -(Int{1} << 100);

  Int lo = 1;   // lo > hi encodes bottom (no value seen yet)
  Int hi = 0;

  static Interval Bottom() { return Interval{1, 0}; }
  static Interval Top() { return Interval{kMin, kMax}; }
  static Interval Point(Int v) { return Interval{v, v}; }
  static Interval Range(Int lo, Int hi);

  /// The value set of a dlog type: bit<w> -> [0, 2^w-1], bigint -> int64
  /// range, bool -> [0, 1]; everything else (strings, tuples, vecs) is Top —
  /// for Vec the caller tracks the *element* hull separately.
  static Interval OfType(const dlog::Type& type);

  bool is_bottom() const { return lo > hi; }
  bool is_top() const { return !is_bottom() && lo <= kMin && hi >= kMax; }

  /// True when every value of this interval lies inside `other`.
  /// Bottom is contained in everything.
  bool ContainedIn(const Interval& other) const;
  /// True when every value fits in an unsigned w-bit field.
  bool FitsBits(int width) const;

  Interval Join(const Interval& o) const;   // union hull
  Interval Meet(const Interval& o) const;   // intersection

  Interval Add(const Interval& o) const;
  Interval Sub(const Interval& o) const;
  Interval Mul(const Interval& o) const;
  Interval Div(const Interval& o) const;    // conservative around 0 divisors
  Interval Mod(const Interval& o) const;
  Interval Neg() const;
  Interval Shl(const Interval& o) const;
  Interval Shr(const Interval& o) const;
  /// Bitwise &, |, ^: conservative hull [0, 2^k-1] for non-negative inputs
  /// (k = bits of the larger operand), Top otherwise.
  Interval BitOp(const Interval& o) const;

  bool operator==(const Interval& o) const {
    return (is_bottom() && o.is_bottom()) || (lo == o.lo && hi == o.hi);
  }
  bool operator!=(const Interval& o) const { return !(*this == o); }

  /// "[lo, hi]", "bottom", with saturated endpoints printed as "-inf"/"inf".
  std::string ToString() const;
};

}  // namespace nerpa::analyze

#endif  // NERPA_ANALYZE_INTERVAL_H_
