#include "ovsdb/database.h"

#include <algorithm>
#include <fstream>
#include <set>

#include "common/log.h"
#include "common/strings.h"

namespace nerpa::ovsdb {

namespace {

/// Orders (table, uuid) pairs for the undo map.
using RowKey = std::pair<std::string, Uuid>;

Result<Clause> ClauseFromJson(const TableSchema& schema, const Json& json) {
  if (!json.is_array() || json.as_array().size() != 3 ||
      !json.as_array()[0].is_string() || !json.as_array()[1].is_string()) {
    return ParseError("clause must be [column, function, value]");
  }
  Clause clause;
  clause.column = json.as_array()[0].as_string();
  clause.function = json.as_array()[1].as_string();
  ColumnType type;
  if (clause.column == "_uuid") {
    type = ColumnType::Scalar(BaseType::Ref(""));
  } else {
    const ColumnSchema* column = schema.FindColumn(clause.column);
    if (column == nullptr) {
      return NotFound(StrFormat("clause names unknown column '%s' in '%s'",
                                clause.column.c_str(), schema.name.c_str()));
    }
    type = column->type;
  }
  NERPA_ASSIGN_OR_RETURN(clause.value,
                         Datum::FromJson(json.as_array()[2], type));
  return clause;
}

/// Reads a row's column value, falling back to the schema default.
Datum GetColumn(const TableSchema& schema, const Row& row,
                const std::string& column) {
  if (column == "_uuid") return Datum::UuidRef(row.uuid);
  if (const Datum* datum = row.Find(column)) return *datum;
  const ColumnSchema* cs = schema.FindColumn(column);
  return cs != nullptr ? Datum::Default(cs->type) : Datum();
}

/// Shrinks a row to the named columns (for column-scoped monitors).
Row ProjectRow(const Row& row, const std::vector<std::string>& columns) {
  Row out;
  out.uuid = row.uuid;
  for (const std::string& column : columns) {
    if (const Datum* datum = row.Find(column)) {
      out.columns.emplace(column, *datum);
    }
  }
  return out;
}

}  // namespace

Result<bool> EvalClause(const TableSchema& schema, const Row& row,
                        const Clause& clause) {
  Datum actual = GetColumn(schema, row, clause.column);
  const std::string& fn = clause.function;
  if (fn == "==") return actual == clause.value;
  if (fn == "!=") return actual != clause.value;
  if (fn == "includes") {
    for (const Atom& key : clause.value.keys()) {
      if (!actual.ContainsKey(key)) return false;
    }
    return true;
  }
  if (fn == "excludes") {
    for (const Atom& key : clause.value.keys()) {
      if (actual.ContainsKey(key)) return false;
    }
    return true;
  }
  if (fn == "<" || fn == "<=" || fn == ">" || fn == ">=") {
    if (actual.size() != 1 || clause.value.size() != 1) {
      return InvalidArgument("ordered comparison requires scalars");
    }
    const Atom& a = actual.scalar();
    const Atom& b = clause.value.scalar();
    if (a.type() != b.type() ||
        (a.type() != AtomicType::kInteger && a.type() != AtomicType::kReal)) {
      return InvalidArgument("ordered comparison requires numeric atoms");
    }
    double x = a.type() == AtomicType::kInteger
                   ? static_cast<double>(a.integer()) : a.real();
    double y = b.type() == AtomicType::kInteger
                   ? static_cast<double>(b.integer()) : b.real();
    if (fn == "<") return x < y;
    if (fn == "<=") return x <= y;
    if (fn == ">") return x > y;
    return x >= y;
  }
  return InvalidArgument("unknown clause function '" + fn + "'");
}

Result<Row> RowFromJson(const TableSchema& schema, const Uuid& uuid,
                        const Json& row_json) {
  if (!row_json.is_object()) return ParseError("row must be an object");
  Row row;
  row.uuid = uuid;
  for (const auto& [column_name, value_json] : row_json.as_object()) {
    const ColumnSchema* column = schema.FindColumn(column_name);
    if (column == nullptr) {
      return NotFound(StrFormat("unknown column '%s' in table '%s'",
                                column_name.c_str(), schema.name.c_str()));
    }
    NERPA_ASSIGN_OR_RETURN(Datum datum,
                           Datum::FromJson(value_json, column->type));
    row.columns.emplace(column_name, std::move(datum));
  }
  return row;
}

TableSchema LeaderLeaseTableSchema() {
  TableSchema table;
  table.name = kLeaderLeaseTable;
  table.columns = {
      {kLeaseEpochColumn, ColumnType::Scalar(BaseType::Integer(0)), false,
       true},
      {kLeaseHolderColumn, ColumnType::Scalar(BaseType::String()), false,
       true},
      {kLeaseExpiryColumn, ColumnType::Scalar(BaseType::Integer()), false,
       true},
  };
  table.is_root = true;
  table.max_rows = 1;  // the singleton invariant the CAS protocol relies on
  return table;
}

DatabaseSchema WithLeaderLease(DatabaseSchema schema) {
  schema.tables.insert({kLeaderLeaseTable, LeaderLeaseTableSchema()});
  return schema;
}

Database::Database(DatabaseSchema schema) : schema_(std::move(schema)) {
  for (const auto& [name, table_schema] : schema_.tables) {
    TableData& data = tables_[name];
    data.index_maps.resize(table_schema.indexes.size());
  }
}

Database::TableData* Database::FindTable(std::string_view name) {
  auto it = tables_.find(std::string(name));
  return it == tables_.end() ? nullptr : &it->second;
}

const Database::TableData* Database::FindTable(std::string_view name) const {
  auto it = tables_.find(std::string(name));
  return it == tables_.end() ? nullptr : &it->second;
}

const Row* Database::GetRow(std::string_view table, const Uuid& uuid) const {
  const TableData* data = FindTable(table);
  if (data == nullptr) return nullptr;
  auto it = data->rows.find(uuid);
  return it == data->rows.end() ? nullptr : &it->second;
}

std::vector<const Row*> Database::GetRows(std::string_view table) const {
  std::vector<const Row*> out;
  const TableData* data = FindTable(table);
  if (data == nullptr) return out;
  out.reserve(data->rows.size());
  for (const auto& [uuid, row] : data->rows) out.push_back(&row);
  return out;
}

size_t Database::RowCount(std::string_view table) const {
  const TableData* data = FindTable(table);
  return data == nullptr ? 0 : data->rows.size();
}

std::optional<std::vector<Uuid>> Database::ProbeIndexes(
    const TableSchema& schema, const TableData& data,
    const std::vector<Clause>& where) const {
  if (where.empty()) return std::nullopt;
  // Probes only apply to pure-equality queries: "==" can neither error nor
  // match more rows than the index key, so the verification step below is
  // exact.
  for (const Clause& clause : where) {
    if (clause.function != "==") return std::nullopt;
  }
  // Any remaining clauses (beyond the ones the index consumed) still have to
  // hold on the candidate row.
  auto verify = [&](const Uuid& uuid) -> std::vector<Uuid> {
    auto it = data.rows.find(uuid);
    if (it == data.rows.end()) return {};
    for (const Clause& clause : where) {
      Result<bool> match = EvalClause(schema, it->second, clause);
      if (!match.ok() || !*match) return {};
    }
    return {uuid};
  };
  // _uuid equality: direct hash lookup.
  for (const Clause& clause : where) {
    if (clause.column != "_uuid") continue;
    if (clause.value.size() != 1 ||
        clause.value.scalar().type() != AtomicType::kUuid) {
      return std::nullopt;
    }
    ++indexed_selects_;
    return verify(clause.value.scalar().uuid());
  }
  // A (compound) unique index every column of which is pinned by a clause.
  for (size_t i = 0; i < schema.indexes.size(); ++i) {
    const std::vector<std::string>& columns = schema.indexes[i];
    std::vector<Datum> key;
    key.reserve(columns.size());
    bool covered = true;
    for (const std::string& column : columns) {
      const Clause* pin = nullptr;
      for (const Clause& clause : where) {
        if (clause.column == column) {
          pin = &clause;
          break;
        }
      }
      if (pin == nullptr) {
        covered = false;
        break;
      }
      key.push_back(pin->value);
    }
    if (!covered) continue;
    ++indexed_selects_;
    auto it = data.index_maps[i].find(key);
    if (it == data.index_maps[i].end()) return std::vector<Uuid>{};
    return verify(it->second);
  }
  return std::nullopt;
}

Result<std::vector<const Row*>> Database::SelectRows(
    std::string_view table, const std::vector<Clause>& where) const {
  const TableSchema* schema = schema_.FindTable(table);
  const TableData* data = FindTable(table);
  if (schema == nullptr || data == nullptr) {
    return NotFound("no table '" + std::string(table) + "'");
  }
  if (auto probed = ProbeIndexes(*schema, *data, where)) {
    std::vector<const Row*> out;
    out.reserve(probed->size());
    for (const Uuid& uuid : *probed) out.push_back(&data->rows.at(uuid));
    return out;
  }
  std::vector<const Row*> out;
  for (const auto& [uuid, row] : data->rows) {
    bool all = true;
    for (const Clause& clause : where) {
      NERPA_ASSIGN_OR_RETURN(bool match, EvalClause(*schema, row, clause));
      if (!match) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(&row);
  }
  return out;
}

uint64_t Database::AddMonitor(std::vector<std::string> tables,
                              MonitorCallback cb) {
  MonitorColumnSpec spec;
  for (std::string& table : tables) spec[std::move(table)];  // all columns
  return AddMonitorColumns(std::move(spec), std::move(cb));
}

uint64_t Database::AddMonitorColumns(MonitorColumnSpec spec,
                                     MonitorCallback cb) {
  Monitor monitor{next_monitor_id_++, std::move(spec), std::move(cb)};
  // Initial state: every current row as an insert, projected to the spec.
  TableUpdates initial;
  for (const auto& [name, data] : tables_) {
    if (!monitor.spec.empty() && monitor.spec.count(name) == 0) continue;
    for (const auto& [uuid, row] : data.rows) {
      initial[name][uuid] = RowUpdate{std::nullopt, row};
    }
  }
  initial = FilterForMonitor(monitor, initial);
  monitors_.push_back(monitor);
  if (!initial.empty()) monitor.callback(initial);
  return monitor.id;
}

TableUpdates Database::FilterForMonitor(const Monitor& monitor,
                                        const TableUpdates& updates) const {
  if (monitor.spec.empty()) return updates;
  TableUpdates out;
  for (const auto& [table, columns] : monitor.spec) {
    auto it = updates.find(table);
    if (it == updates.end()) continue;
    if (columns.empty()) {
      out.insert(*it);
      continue;
    }
    TableUpdate projected_rows;
    for (const auto& [uuid, update] : it->second) {
      RowUpdate projected;
      if (update.old_row) {
        projected.old_row = ProjectRow(*update.old_row, columns);
      }
      if (update.new_row) {
        projected.new_row = ProjectRow(*update.new_row, columns);
      }
      // A modify that only touched unselected columns is invisible.
      if (projected.is_modify() && *projected.old_row == *projected.new_row) {
        continue;
      }
      projected_rows.emplace(uuid, std::move(projected));
    }
    if (!projected_rows.empty()) {
      out.emplace(table, std::move(projected_rows));
    }
  }
  return out;
}

Result<Json> Database::FetchRows(std::string_view table, const Json& where_json,
                                 const std::vector<std::string>& columns) const {
  const TableSchema* schema = schema_.FindTable(table);
  if (schema == nullptr) {
    return NotFound("no table '" + std::string(table) + "'");
  }
  if (!where_json.is_array()) return ParseError("'where' must be an array");
  std::vector<Clause> where;
  for (const Json& clause_json : where_json.as_array()) {
    NERPA_ASSIGN_OR_RETURN(Clause clause, ClauseFromJson(*schema, clause_json));
    where.push_back(std::move(clause));
  }
  std::vector<std::string> projected = columns;
  if (projected.empty()) {
    projected.emplace_back("_uuid");
    for (const ColumnSchema& c : schema->columns) projected.push_back(c.name);
  } else {
    for (const std::string& column : projected) {
      if (column != "_uuid" && schema->FindColumn(column) == nullptr) {
        return NotFound(StrFormat("unknown column '%s' in table '%s'",
                                  column.c_str(), schema->name.c_str()));
      }
    }
  }
  NERPA_ASSIGN_OR_RETURN(std::vector<const Row*> rows,
                         SelectRows(table, where));
  // Deterministic row order keeps responses reproducible (and cacheable).
  std::sort(rows.begin(), rows.end(),
            [](const Row* a, const Row* b) { return a->uuid < b->uuid; });
  Json::Array out_rows;
  for (const Row* row : rows) {
    Json::Object row_json;
    for (const std::string& column : projected) {
      row_json[column] = GetColumn(*schema, *row, column).ToJson();
    }
    out_rows.push_back(Json(std::move(row_json)));
  }
  return Json(Json::Object{{"rows", Json(std::move(out_rows))}});
}

void Database::RemoveMonitor(uint64_t id) {
  monitors_.erase(std::remove_if(monitors_.begin(), monitors_.end(),
                                 [id](const Monitor& m) { return m.id == id; }),
                  monitors_.end());
}

// ---------------------------------------------------------------------------
// Transaction executor.
// ---------------------------------------------------------------------------

class Database::Txn {
 public:
  explicit Txn(Database* db) : db_(db) {}

  Result<Json> Execute(const Json& operations) {
    if (!operations.is_array()) {
      return ParseError("transact request must be an array of operations");
    }
    // Pre-scan for named uuids so forward references resolve (RFC 7047
    // allows an op to reference a row inserted by a later op).
    for (const Json& op : operations.as_array()) {
      const Json* name = op.Find("uuid-name");
      if (name != nullptr && name->is_string()) {
        if (named_uuids_.count(name->as_string()) != 0) {
          Rollback();
          return InvalidArgument("duplicate uuid-name '" + name->as_string() +
                                 "'");
        }
        // Journal replay pins row identities via an explicit "uuid" member.
        Uuid uuid = Uuid::Generate();
        if (const Json* forced = op.Find("uuid");
            forced != nullptr && forced->is_string()) {
          auto parsed = Uuid::Parse(forced->as_string());
          if (!parsed) {
            Rollback();
            return InvalidArgument("malformed forced uuid");
          }
          uuid = *parsed;
        }
        named_uuids_[name->as_string()] = uuid;
      }
    }
    Json::Array results;
    for (const Json& op : operations.as_array()) {
      Result<Json> result = ExecuteOp(op);
      if (!result.ok()) {
        Rollback();
        return result.status();
      }
      results.push_back(std::move(result).value());
    }
    Status constraints = EnforceConstraints();
    if (!constraints.ok()) {
      Rollback();
      return constraints;
    }
    CommitNotify();
    return Json(std::move(results));
  }

 private:
  Result<Json> ExecuteOp(const Json& op) {
    const Json* op_name = op.Find("op");
    if (op_name == nullptr || !op_name->is_string()) {
      return ParseError("operation missing 'op'");
    }
    const std::string& name = op_name->as_string();
    if (name == "insert") return OpInsert(op);
    if (name == "select") return OpSelect(op);
    if (name == "update") return OpUpdate(op);
    if (name == "mutate") return OpMutate(op);
    if (name == "delete") return OpDelete(op);
    if (name == "wait") return OpWait(op);
    if (name == "comment") return Json(Json::Object{});
    if (name == "abort") return FailedPrecondition("aborted");
    if (name == "assert_fence") return OpAssertFence(op);
    return InvalidArgument("unknown operation '" + name + "'");
  }

  /// Split-brain fencing: the op's epoch must be at least the epoch in the
  /// Leader_Lease singleton, read at in-transaction state (so an acquire
  /// that bumps the epoch earlier in the same transaction is visible).  An
  /// absent row fences nothing — no leader has ever been elected.
  Result<Json> OpAssertFence(const Json& op) {
    const Json* epoch = op.Find("epoch");
    if (epoch == nullptr || !epoch->is_integer()) {
      return ParseError("assert_fence needs integer 'epoch'");
    }
    const int64_t token = epoch->as_integer();
    const TableSchema* schema = db_->schema_.FindTable(kLeaderLeaseTable);
    TableData* data = db_->FindTable(kLeaderLeaseTable);
    if (schema == nullptr || data == nullptr) {
      return InvalidArgument("assert_fence on a database without a '" +
                             std::string(kLeaderLeaseTable) + "' table");
    }
    for (const auto& [uuid, row] : data->rows) {
      const Datum* current = row.Find(kLeaseEpochColumn);
      const int64_t lease_epoch =
          current != nullptr && !current->empty() ? current->AsInteger() : 0;
      if (token < lease_epoch) {
        ++db_->fence_rejections_;
        return PermissionDenied(
            StrFormat("stale fencing token: epoch %lld < lease epoch %lld",
                      static_cast<long long>(token),
                      static_cast<long long>(lease_epoch)));
      }
    }
    return Json(Json::Object{});
  }

  Result<const TableSchema*> GetTableSchema(const Json& op) {
    const Json* table = op.Find("table");
    if (table == nullptr || !table->is_string()) {
      return ParseError("operation missing 'table'");
    }
    const TableSchema* schema = db_->schema_.FindTable(table->as_string());
    if (schema == nullptr) {
      return NotFound("no table '" + table->as_string() + "'");
    }
    return schema;
  }

  Result<std::vector<Clause>> GetWhere(const TableSchema& schema,
                                       const Json& op) {
    const Json* where = op.Find("where");
    if (where == nullptr) return ParseError("operation missing 'where'");
    if (!where->is_array()) return ParseError("'where' must be an array");
    std::vector<Clause> out;
    for (const Json& clause_json : where->as_array()) {
      NERPA_ASSIGN_OR_RETURN(Clause clause,
                             ClauseFromJson(schema, clause_json));
      out.push_back(std::move(clause));
    }
    return out;
  }

  /// UUIDs of rows matching `where`, reading *current* (in-txn) state.
  Result<std::vector<Uuid>> MatchRows(const TableSchema& schema,
                                      const std::vector<Clause>& where) {
    TableData& data = *db_->FindTable(schema.name);
    // Index probe: in-txn index maps are kept current by PutRow, so the
    // same fast path serves transaction `where` matching.
    if (auto probed = db_->ProbeIndexes(schema, data, where)) {
      return *probed;  // 0 or 1 rows — trivially sorted
    }
    std::vector<Uuid> out;
    for (auto& [uuid, row] : data.rows) {
      bool all = true;
      for (const Clause& clause : where) {
        NERPA_ASSIGN_OR_RETURN(bool match, EvalClause(schema, row, clause));
        if (!match) {
          all = false;
          break;
        }
      }
      if (all) out.push_back(uuid);
    }
    // Deterministic order keeps results and monitor deltas reproducible.
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Parses the "row" member of an op against the schema.
  Result<std::map<std::string, Datum>> ParseRowColumns(
      const TableSchema& schema, const Json& op, bool for_update) {
    const Json* row = op.Find("row");
    if (row == nullptr || !row->is_object()) {
      return ParseError("operation missing 'row' object");
    }
    std::map<std::string, Datum> out;
    for (const auto& [column_name, value_json] : row->as_object()) {
      const ColumnSchema* column = schema.FindColumn(column_name);
      if (column == nullptr) {
        return NotFound(StrFormat("unknown column '%s' in table '%s'",
                                  column_name.c_str(), schema.name.c_str()));
      }
      if (for_update && !column->mutable_) {
        return ConstraintError("column '" + column_name + "' is immutable");
      }
      NERPA_ASSIGN_OR_RETURN(
          Datum datum,
          Datum::FromJson(value_json, column->type, &named_uuids_));
      out.emplace(column_name, std::move(datum));
    }
    return out;
  }

  Result<Json> OpInsert(const Json& op) {
    NERPA_ASSIGN_OR_RETURN(const TableSchema* schema, GetTableSchema(op));
    NERPA_ASSIGN_OR_RETURN(auto columns,
                           ParseRowColumns(*schema, op, /*for_update=*/false));
    Row row;
    const Json* name = op.Find("uuid-name");
    const Json* forced = op.Find("uuid");
    if (name != nullptr && name->is_string()) {
      row.uuid = named_uuids_.at(name->as_string());
    } else if (forced != nullptr && forced->is_string()) {
      auto parsed = Uuid::Parse(forced->as_string());
      if (!parsed) return InvalidArgument("malformed forced uuid");
      row.uuid = *parsed;
    } else {
      row.uuid = Uuid::Generate();
    }
    if (db_->FindTable(schema->name)->rows.count(row.uuid) != 0) {
      return AlreadyExists("row uuid already present in table '" +
                           schema->name + "'");
    }
    // Fill unspecified columns with defaults so min-cardinality passes.
    for (const ColumnSchema& column : schema->columns) {
      if (columns.find(column.name) == columns.end()) {
        columns.emplace(column.name, Datum::Default(column.type));
      }
    }
    row.columns = std::move(columns);
    TableData& data = *db_->FindTable(schema->name);
    if (data.rows.size() >= schema->max_rows) {
      return ConstraintError("table '" + schema->name + "' is full");
    }
    Uuid uuid = row.uuid;
    NERPA_RETURN_IF_ERROR(PutRow(*schema, uuid, std::move(row)));
    return Json(Json::Object{
        {"uuid", Json(Json::Array{Json("uuid"), Json(uuid.ToString())})}});
  }

  Result<Json> OpSelect(const Json& op) {
    NERPA_ASSIGN_OR_RETURN(const TableSchema* schema, GetTableSchema(op));
    NERPA_ASSIGN_OR_RETURN(auto where, GetWhere(*schema, op));
    NERPA_ASSIGN_OR_RETURN(auto uuids, MatchRows(*schema, where));
    // Column projection: default all + _uuid.
    std::vector<std::string> columns;
    if (const Json* cols = op.Find("columns"); cols && cols->is_array()) {
      for (const Json& c : cols->as_array()) columns.push_back(c.as_string());
    } else {
      columns.emplace_back("_uuid");
      for (const ColumnSchema& c : schema->columns) columns.push_back(c.name);
    }
    TableData& data = *db_->FindTable(schema->name);
    Json::Array rows;
    for (const Uuid& uuid : uuids) {
      const Row& row = data.rows.at(uuid);
      Json::Object row_json;
      for (const std::string& column : columns) {
        row_json[column] = GetColumn(*schema, row, column).ToJson();
      }
      rows.push_back(Json(std::move(row_json)));
    }
    return Json(Json::Object{{"rows", Json(std::move(rows))}});
  }

  Result<Json> OpUpdate(const Json& op) {
    NERPA_ASSIGN_OR_RETURN(const TableSchema* schema, GetTableSchema(op));
    NERPA_ASSIGN_OR_RETURN(auto where, GetWhere(*schema, op));
    NERPA_ASSIGN_OR_RETURN(auto columns,
                           ParseRowColumns(*schema, op, /*for_update=*/true));
    NERPA_ASSIGN_OR_RETURN(auto uuids, MatchRows(*schema, where));
    TableData& data = *db_->FindTable(schema->name);
    for (const Uuid& uuid : uuids) {
      Row row = data.rows.at(uuid);
      for (const auto& [column, datum] : columns) row.columns[column] = datum;
      NERPA_RETURN_IF_ERROR(PutRow(*schema, uuid, std::move(row)));
    }
    return Json(Json::Object{
        {"count", Json(static_cast<int64_t>(uuids.size()))}});
  }

  Result<Json> OpMutate(const Json& op) {
    NERPA_ASSIGN_OR_RETURN(const TableSchema* schema, GetTableSchema(op));
    NERPA_ASSIGN_OR_RETURN(auto where, GetWhere(*schema, op));
    const Json* mutations = op.Find("mutations");
    if (mutations == nullptr || !mutations->is_array()) {
      return ParseError("mutate missing 'mutations'");
    }
    NERPA_ASSIGN_OR_RETURN(auto uuids, MatchRows(*schema, where));
    TableData& data = *db_->FindTable(schema->name);
    for (const Uuid& uuid : uuids) {
      Row row = data.rows.at(uuid);
      for (const Json& mutation : mutations->as_array()) {
        NERPA_RETURN_IF_ERROR(ApplyMutation(*schema, row, mutation));
      }
      NERPA_RETURN_IF_ERROR(PutRow(*schema, uuid, std::move(row)));
    }
    return Json(Json::Object{
        {"count", Json(static_cast<int64_t>(uuids.size()))}});
  }

  Status ApplyMutation(const TableSchema& schema, Row& row,
                       const Json& mutation) {
    if (!mutation.is_array() || mutation.as_array().size() != 3 ||
        !mutation.as_array()[0].is_string() ||
        !mutation.as_array()[1].is_string()) {
      return ParseError("mutation must be [column, mutator, value]");
    }
    const std::string& column_name = mutation.as_array()[0].as_string();
    const std::string& mutator = mutation.as_array()[1].as_string();
    const Json& value_json = mutation.as_array()[2];
    const ColumnSchema* column = schema.FindColumn(column_name);
    if (column == nullptr) {
      return NotFound("mutation names unknown column '" + column_name + "'");
    }
    if (!column->mutable_) {
      return ConstraintError("column '" + column_name + "' is immutable");
    }
    Datum current = GetColumn(schema, row, column_name);

    if (mutator == "setkey" || mutator == "delkey") {
      // Partial map updates (the OVSDB-improvements fast path): ship only
      // the touched key(s) instead of rewriting the whole map.  setkey
      // inserts or overwrites; delkey removes (absent keys are a no-op).
      if (!column->type.is_map()) {
        return TypeError("'" + mutator + "' requires a map column");
      }
      if (mutator == "setkey") {
        ColumnType loose = column->type;
        loose.min = 0;
        loose.max = kUnlimited;
        NERPA_ASSIGN_OR_RETURN(
            Datum delta, Datum::FromJson(value_json, loose, &named_uuids_));
        for (size_t i = 0; i < delta.keys().size(); ++i) {
          current.EraseKey(delta.keys()[i]);
          current.InsertPair(delta.keys()[i], delta.values()[i]);
        }
      } else {
        ColumnType keys_only = ColumnType::Set(column->type.key, 0, kUnlimited);
        NERPA_ASSIGN_OR_RETURN(
            Datum keys, Datum::FromJson(value_json, keys_only, &named_uuids_));
        for (const Atom& key : keys.keys()) current.EraseKey(key);
      }
      row.columns[column_name] = std::move(current);
      return Status::Ok();
    }

    if (mutator == "insert" || mutator == "delete") {
      // Value is a set (or map) of elements to add/remove.
      ColumnType loose = column->type;
      loose.min = 0;
      loose.max = kUnlimited;
      if (mutator == "delete" && column->type.is_map()) {
        // Deleting from a map may name just keys.
        ColumnType keys_only = ColumnType::Set(column->type.key, 0, kUnlimited);
        Result<Datum> as_keys =
            Datum::FromJson(value_json, keys_only, &named_uuids_);
        if (as_keys.ok()) {
          for (const Atom& key : as_keys->keys()) current.EraseKey(key);
          row.columns[column_name] = std::move(current);
          return Status::Ok();
        }
      }
      NERPA_ASSIGN_OR_RETURN(Datum delta,
                             Datum::FromJson(value_json, loose, &named_uuids_));
      if (mutator == "insert") {
        if (column->type.is_map()) {
          for (size_t i = 0; i < delta.keys().size(); ++i) {
            // OVSDB "insert" does not overwrite existing map keys.
            if (!current.ContainsKey(delta.keys()[i])) {
              current.InsertPair(delta.keys()[i], delta.values()[i]);
            }
          }
        } else {
          for (const Atom& key : delta.keys()) current.InsertKey(key);
        }
      } else {
        for (const Atom& key : delta.keys()) current.EraseKey(key);
      }
      row.columns[column_name] = std::move(current);
      return Status::Ok();
    }

    // Arithmetic mutators on integer/real scalars.
    if (current.size() != 1) {
      return InvalidArgument("arithmetic mutation requires a scalar");
    }
    const Atom& atom = current.scalar();
    if (atom.type() == AtomicType::kInteger) {
      if (!value_json.is_integer()) {
        return TypeError("integer mutation needs integer operand");
      }
      int64_t x = atom.integer();
      int64_t y = value_json.as_integer();
      if ((mutator == "/=" || mutator == "%=") && y == 0) {
        return InvalidArgument("division by zero in mutation");
      }
      if (mutator == "+=") x += y;
      else if (mutator == "-=") x -= y;
      else if (mutator == "*=") x *= y;
      else if (mutator == "/=") x /= y;
      else if (mutator == "%=") x %= y;
      else return InvalidArgument("unknown mutator '" + mutator + "'");
      row.columns[column_name] = Datum::Integer(x);
      return Status::Ok();
    }
    if (atom.type() == AtomicType::kReal) {
      if (!value_json.is_number()) {
        return TypeError("real mutation needs numeric operand");
      }
      double x = atom.real();
      double y = value_json.as_double();
      if (mutator == "/=" && y == 0) {
        return InvalidArgument("division by zero in mutation");
      }
      if (mutator == "+=") x += y;
      else if (mutator == "-=") x -= y;
      else if (mutator == "*=") x *= y;
      else if (mutator == "/=") x /= y;
      else return InvalidArgument("unknown mutator '" + mutator + "'");
      row.columns[column_name] = Datum::Real(x);
      return Status::Ok();
    }
    return TypeError("arithmetic mutation on non-numeric column");
  }

  Result<Json> OpDelete(const Json& op) {
    NERPA_ASSIGN_OR_RETURN(const TableSchema* schema, GetTableSchema(op));
    NERPA_ASSIGN_OR_RETURN(auto where, GetWhere(*schema, op));
    NERPA_ASSIGN_OR_RETURN(auto uuids, MatchRows(*schema, where));
    for (const Uuid& uuid : uuids) {
      NERPA_RETURN_IF_ERROR(PutRow(*schema, uuid, std::nullopt));
    }
    return Json(Json::Object{
        {"count", Json(static_cast<int64_t>(uuids.size()))}});
  }

  Result<Json> OpWait(const Json& op) {
    NERPA_ASSIGN_OR_RETURN(const TableSchema* schema, GetTableSchema(op));
    NERPA_ASSIGN_OR_RETURN(auto where, GetWhere(*schema, op));
    const Json* until = op.Find("until");
    const Json* rows = op.Find("rows");
    if (until == nullptr || !until->is_string() || rows == nullptr ||
        !rows->is_array()) {
      return ParseError("wait needs 'until' and 'rows'");
    }
    std::vector<std::string> columns;
    if (const Json* cols = op.Find("columns"); cols && cols->is_array()) {
      for (const Json& c : cols->as_array()) columns.push_back(c.as_string());
    } else {
      for (const ColumnSchema& c : schema->columns) columns.push_back(c.name);
    }
    NERPA_ASSIGN_OR_RETURN(auto uuids, MatchRows(*schema, where));
    TableData& data = *db_->FindTable(schema->name);
    // Build multisets of projected rows on both sides and compare.
    std::multiset<std::vector<Datum>> actual, expected;
    for (const Uuid& uuid : uuids) {
      const Row& row = data.rows.at(uuid);
      std::vector<Datum> projected;
      for (const std::string& column : columns) {
        projected.push_back(GetColumn(*schema, row, column));
      }
      actual.insert(std::move(projected));
    }
    for (const Json& row_json : rows->as_array()) {
      if (!row_json.is_object()) return ParseError("wait row must be object");
      std::vector<Datum> projected;
      for (const std::string& column : columns) {
        const ColumnSchema* cs = schema->FindColumn(column);
        if (cs == nullptr) return NotFound("wait names unknown column");
        const Json* cell = row_json.Find(column);
        if (cell == nullptr) {
          projected.push_back(Datum::Default(cs->type));
        } else {
          NERPA_ASSIGN_OR_RETURN(
              Datum datum, Datum::FromJson(*cell, cs->type, &named_uuids_));
          projected.push_back(std::move(datum));
        }
      }
      expected.insert(std::move(projected));
    }
    bool equal = actual == expected;
    bool want_equal = until->as_string() == "==";
    if (equal != want_equal) {
      return FailedPrecondition("wait condition not met (timed out)");
    }
    return Json(Json::Object{});
  }

  // --- State mutation with undo tracking ---

  /// Installs (or deletes, when nullopt) a row, validating column types and
  /// unique indexes, and recording undo state on first touch.
  Status PutRow(const TableSchema& schema, const Uuid& uuid,
                std::optional<Row> row) {
    TableData& data = *db_->FindTable(schema.name);
    auto it = data.rows.find(uuid);
    std::optional<Row> old_row;
    if (it != data.rows.end()) old_row = it->second;
    if (!old_row && !row) return Status::Ok();

    if (row) {
      for (const auto& [column_name, datum] : row->columns) {
        const ColumnSchema* column = schema.FindColumn(column_name);
        if (column == nullptr) {
          return NotFound("unknown column '" + column_name + "'");
        }
        Status check = datum.CheckType(column->type);
        if (!check.ok()) {
          return Status(check.code(),
                        StrFormat("%s.%s: %s", schema.name.c_str(),
                                  column_name.c_str(),
                                  check.message().c_str()));
        }
      }
    }

    // Unique index maintenance.
    for (size_t i = 0; i < schema.indexes.size(); ++i) {
      auto& index_map = data.index_maps[i];
      if (old_row) {
        index_map.erase(IndexKey(schema, *old_row, schema.indexes[i]));
      }
      if (row) {
        std::vector<Datum> key = IndexKey(schema, *row, schema.indexes[i]);
        auto [pos, inserted] = index_map.emplace(std::move(key), uuid);
        if (!inserted && pos->second != uuid) {
          // Restore the old entry before failing so rollback stays simple.
          if (old_row) {
            index_map.emplace(IndexKey(schema, *old_row, schema.indexes[i]),
                              uuid);
          }
          return ConstraintError(StrFormat(
              "unique index %zu violated in table '%s'", i,
              schema.name.c_str()));
        }
      }
    }

    RowKey key{schema.name, uuid};
    undo_.emplace(key, old_row);  // keeps the *first* recorded old state
    if (row) {
      data.rows[uuid] = std::move(*row);
    } else {
      data.rows.erase(uuid);
    }
    return Status::Ok();
  }

  static std::vector<Datum> IndexKey(const TableSchema& schema, const Row& row,
                                     const std::vector<std::string>& columns) {
    std::vector<Datum> key;
    key.reserve(columns.size());
    for (const std::string& column : columns) {
      key.push_back(GetColumn(schema, row, column));
    }
    return key;
  }

  // --- Post-op constraint enforcement ---

  Status EnforceConstraints() {
    // Garbage collection can orphan weak references (a GC'd row was some
    // weak ref's target), and pruning weak refs can in turn unreference
    // non-root rows; iterate to fixpoint.
    while (true) {
      NERPA_RETURN_IF_ERROR(PruneWeakRefsAndCheckStrong());
      NERPA_ASSIGN_OR_RETURN(bool gc_deleted, GarbageCollect());
      if (!gc_deleted) return Status::Ok();
    }
  }

  /// Set of row UUIDs deleted (so far) from `table` by this transaction.
  std::set<Uuid> DeletedFrom(const std::string& table) {
    std::set<Uuid> out;
    TableData& data = *db_->FindTable(table);
    for (const auto& [key, old_row] : undo_) {
      if (key.first != table || !old_row) continue;
      if (data.rows.find(key.second) == data.rows.end()) {
        out.insert(key.second);
      }
    }
    return out;
  }

  Status PruneWeakRefsAndCheckStrong() {
    // 1. Remove weak references that now dangle.  Only needed when rows were
    //    deleted; we scan referrer tables (workshop-scale OK).
    for (const auto& [table_name, table_schema] : db_->schema_.tables) {
      std::set<Uuid> deleted = DeletedFrom(table_name);
      if (deleted.empty()) continue;
      for (const auto& [ref_table, ref_schema] : db_->schema_.tables) {
        for (const ColumnSchema& column : ref_schema.columns) {
          for (const BaseType* base :
               {&column.type.key,
                column.type.value ? &*column.type.value : nullptr}) {
            if (base == nullptr || base->ref_table != table_name ||
                !base->ref_weak) {
              continue;
            }
            TableData& data = *db_->FindTable(ref_table);
            bool key_side = base == &column.type.key;
            std::vector<std::pair<Uuid, Row>> rewrites;
            for (const auto& [uuid, row] : data.rows) {
              const Datum* datum = row.Find(column.name);
              if (datum == nullptr) continue;
              bool dirty = false;
              Datum updated = *datum;
              if (key_side) {
                for (const Atom& key : datum->keys()) {
                  if (key.type() == AtomicType::kUuid &&
                      deleted.count(key.uuid()) != 0) {
                    updated.EraseKey(key);
                    dirty = true;
                  }
                }
              } else if (datum->is_map()) {
                // Weak refs in map *values*: drop the whole pair.
                for (size_t i = 0; i < datum->keys().size(); ++i) {
                  const Atom& value = datum->values()[i];
                  if (value.type() == AtomicType::kUuid &&
                      deleted.count(value.uuid()) != 0) {
                    updated.EraseKey(datum->keys()[i]);
                    dirty = true;
                  }
                }
              }
              if (dirty) {
                Row rewritten{uuid, row.columns};
                rewritten.columns[column.name] = std::move(updated);
                rewrites.emplace_back(uuid, std::move(rewritten));
              }
            }
            for (auto& [uuid, row] : rewrites) {
              NERPA_RETURN_IF_ERROR(PutRow(ref_schema, uuid, std::move(row)));
            }
          }
        }
      }
    }

    // 2. Strong references from changed rows must resolve; strong references
    //    *to* deleted rows must be gone.
    for (const auto& [key, old_row] : undo_) {
      const auto& [table_name, uuid] = key;
      TableData& data = *db_->FindTable(table_name);
      auto it = data.rows.find(uuid);
      if (it == data.rows.end()) continue;  // deleted; referrers checked below
      const TableSchema& schema = *db_->schema_.FindTable(table_name);
      for (const ColumnSchema& column : schema.columns) {
        const Datum* datum = it->second.Find(column.name);
        if (datum == nullptr) continue;
        NERPA_RETURN_IF_ERROR(
            CheckStrongRefs(schema, column, *datum));
      }
    }
    for (const auto& [table_name, table_schema] : db_->schema_.tables) {
      std::set<Uuid> deleted = DeletedFrom(table_name);
      if (deleted.empty()) continue;
      for (const auto& [ref_table, ref_schema] : db_->schema_.tables) {
        for (const ColumnSchema& column : ref_schema.columns) {
          bool strong_here =
              (!column.type.key.ref_table.empty() &&
               column.type.key.ref_table == table_name &&
               !column.type.key.ref_weak) ||
              (column.type.value && !column.type.value->ref_table.empty() &&
               column.type.value->ref_table == table_name &&
               !column.type.value->ref_weak);
          if (!strong_here) continue;
          TableData& data = *db_->FindTable(ref_table);
          for (const auto& [uuid, row] : data.rows) {
            const Datum* datum = row.Find(column.name);
            if (datum == nullptr) continue;
            for (const Atom& atom : datum->keys()) {
              if (atom.type() == AtomicType::kUuid &&
                  deleted.count(atom.uuid()) != 0) {
                return ConstraintError(StrFormat(
                    "row %s still strongly referenced from %s.%s",
                    atom.uuid().ToString().c_str(), ref_table.c_str(),
                    column.name.c_str()));
              }
            }
            for (const Atom& atom : datum->values()) {
              if (atom.type() == AtomicType::kUuid &&
                  deleted.count(atom.uuid()) != 0) {
                return ConstraintError(StrFormat(
                    "row %s still strongly referenced from %s.%s",
                    atom.uuid().ToString().c_str(), ref_table.c_str(),
                    column.name.c_str()));
              }
            }
          }
        }
      }
    }
    return Status::Ok();
  }

  Status CheckStrongRefs(const TableSchema& schema, const ColumnSchema& column,
                         const Datum& datum) {
    auto check_atoms = [&](const std::vector<Atom>& atoms,
                           const BaseType& base) -> Status {
      if (base.ref_table.empty() || base.ref_weak) return Status::Ok();
      TableData& target = *db_->FindTable(base.ref_table);
      for (const Atom& atom : atoms) {
        if (atom.type() != AtomicType::kUuid) continue;
        if (atom.uuid().IsZero()) continue;  // default value, not a real ref
        if (target.rows.find(atom.uuid()) == target.rows.end()) {
          return ConstraintError(StrFormat(
              "%s.%s: strong reference to nonexistent %s row %s",
              schema.name.c_str(), column.name.c_str(),
              base.ref_table.c_str(), atom.uuid().ToString().c_str()));
        }
      }
      return Status::Ok();
    };
    NERPA_RETURN_IF_ERROR(check_atoms(datum.keys(), column.type.key));
    if (column.type.value) {
      NERPA_RETURN_IF_ERROR(check_atoms(datum.values(), *column.type.value));
    }
    return Status::Ok();
  }

  /// Deletes rows of non-root tables that no strong reference reaches,
  /// cascading until fixpoint (RFC 7047 "isRoot" garbage collection).
  /// Returns whether anything was deleted.
  Result<bool> GarbageCollect() {
    bool has_non_root = false;
    for (const auto& [name, table] : db_->schema_.tables) {
      if (!table.is_root && db_->FindTable(name)->rows.size() > 0) {
        has_non_root = true;
      }
    }
    if (!has_non_root) return false;

    bool any_deleted = false;
    while (true) {
      // Collect every uuid strongly or weakly referenced... GC counts *any*
      // reference per RFC 7047 (weak refs do not keep rows alive; only
      // strong ones do).
      std::map<std::string, std::set<Uuid>> referenced;
      for (const auto& [table_name, table_schema] : db_->schema_.tables) {
        TableData& data = *db_->FindTable(table_name);
        for (const auto& [uuid, row] : data.rows) {
          for (const ColumnSchema& column : table_schema.columns) {
            const Datum* datum = row.Find(column.name);
            if (datum == nullptr) continue;
            auto note = [&](const std::vector<Atom>& atoms,
                            const BaseType& base) {
              if (base.ref_table.empty() || base.ref_weak) return;
              for (const Atom& atom : atoms) {
                if (atom.type() == AtomicType::kUuid) {
                  referenced[base.ref_table].insert(atom.uuid());
                }
              }
            };
            note(datum->keys(), column.type.key);
            if (column.type.value) note(datum->values(), *column.type.value);
          }
        }
      }
      bool deleted_any = false;
      for (const auto& [table_name, table_schema] : db_->schema_.tables) {
        if (table_schema.is_root) continue;
        TableData& data = *db_->FindTable(table_name);
        std::vector<Uuid> to_delete;
        const std::set<Uuid>& live = referenced[table_name];
        for (const auto& [uuid, row] : data.rows) {
          if (live.count(uuid) == 0) to_delete.push_back(uuid);
        }
        for (const Uuid& uuid : to_delete) {
          NERPA_RETURN_IF_ERROR(PutRow(table_schema, uuid, std::nullopt));
          deleted_any = true;
          any_deleted = true;
        }
      }
      if (!deleted_any) return any_deleted;
    }
  }

  // --- Commit / rollback ---

  void Rollback() {
    // Restore rows in reverse insertion order is unnecessary (undo_ stores
    // the original state); indexes are rebuilt for affected tables.
    std::set<std::string> touched;
    for (auto& [key, old_row] : undo_) {
      TableData& data = *db_->FindTable(key.first);
      if (old_row) {
        data.rows[key.second] = *old_row;
      } else {
        data.rows.erase(key.second);
      }
      touched.insert(key.first);
    }
    for (const std::string& table_name : touched) {
      RebuildIndexes(table_name);
    }
    undo_.clear();
  }

  void RebuildIndexes(const std::string& table_name) {
    const TableSchema& schema = *db_->schema_.FindTable(table_name);
    TableData& data = *db_->FindTable(table_name);
    for (size_t i = 0; i < schema.indexes.size(); ++i) {
      data.index_maps[i].clear();
      for (const auto& [uuid, row] : data.rows) {
        data.index_maps[i].emplace(IndexKey(schema, row, schema.indexes[i]),
                                   uuid);
      }
    }
  }

  void CommitNotify() {
    TableUpdates updates;
    for (const auto& [key, old_row] : undo_) {
      const auto& [table_name, uuid] = key;
      TableData& data = *db_->FindTable(table_name);
      auto it = data.rows.find(uuid);
      std::optional<Row> new_row;
      if (it != data.rows.end()) new_row = it->second;
      if (!old_row && !new_row) continue;  // inserted then deleted: invisible
      if (old_row && new_row && *old_row == *new_row) continue;  // no-op
      updates[table_name][uuid] = RowUpdate{old_row, new_row};
    }
    ++db_->commit_count_;
    if (updates.empty()) return;
    // Copy the monitor list: a callback may add/remove monitors.
    std::vector<Monitor> monitors = db_->monitors_;
    for (const Monitor& monitor : monitors) {
      TableUpdates filtered = db_->FilterForMonitor(monitor, updates);
      if (!filtered.empty()) monitor.callback(filtered);
    }
  }

  Database* db_;
  std::map<std::string, Uuid> named_uuids_;
  std::map<RowKey, std::optional<Row>> undo_;
};

namespace {

/// Rewrites `operations`, pinning each insert's generated uuid (taken from
/// the corresponding result) so journal replay reproduces identities.
Json PinInsertUuids(const Json& operations, const Json& results) {
  Json::Array pinned;
  const Json::Array& ops = operations.as_array();
  const Json::Array& res = results.as_array();
  for (size_t i = 0; i < ops.size(); ++i) {
    Json op = ops[i];
    if (const Json* kind = op.Find("op");
        kind != nullptr && kind->is_string() && kind->as_string() == "insert" &&
        i < res.size()) {
      if (const Json* uuid = res[i].Find("uuid");
          uuid != nullptr && uuid->is_array()) {
        op.as_object()["uuid"] = uuid->as_array()[1];
      }
    }
    pinned.push_back(std::move(op));
  }
  return Json(std::move(pinned));
}

}  // namespace

Result<Json> Database::Transact(const Json& operations) {
  Txn txn(this);
  NERPA_ASSIGN_OR_RETURN(Json results, txn.Execute(operations));
  if (!journal_path_.empty() || !commit_hooks_.empty()) {
    Json pinned = PinInsertUuids(operations, results);
    if (!journal_path_.empty()) {
      std::ofstream journal(journal_path_, std::ios::app);
      if (!journal) {
        return Internal("cannot append to journal '" + journal_path_ + "'");
      }
      journal << pinned.Dump() << "\n";
    }
    for (const auto& [id, hook] : commit_hooks_) hook(pinned);
  }
  return results;
}

uint64_t Database::AddCommitHook(CommitHook hook) {
  uint64_t id = next_hook_id_++;
  commit_hooks_.emplace_back(id, std::move(hook));
  return id;
}

void Database::RemoveCommitHook(uint64_t id) {
  commit_hooks_.erase(
      std::remove_if(commit_hooks_.begin(), commit_hooks_.end(),
                     [id](const auto& entry) { return entry.first == id; }),
      commit_hooks_.end());
}

Status Database::EnableJournal(const std::string& path) {
  std::ofstream touch(path, std::ios::app);
  if (!touch) return Internal("cannot open journal '" + path + "'");
  journal_path_ = path;
  return Status::Ok();
}

Result<std::unique_ptr<Database>> Database::RestoreFromJournal(
    DatabaseSchema schema, const std::string& path) {
  auto db = std::make_unique<Database>(std::move(schema));
  std::ifstream journal(path);
  if (!journal) return NotFound("no journal at '" + path + "'");
  std::string line;
  int line_number = 0;
  while (std::getline(journal, line)) {
    ++line_number;
    if (Trim(line).empty()) continue;
    NERPA_ASSIGN_OR_RETURN(Json operations, Json::Parse(line));
    Result<Json> replayed = db->Transact(operations);
    if (!replayed.ok()) {
      return Internal(StrFormat("journal replay failed at line %d: %s",
                                line_number,
                                replayed.status().ToString().c_str()));
    }
  }
  return db;
}

Result<Json> Database::TransactText(std::string_view text) {
  NERPA_ASSIGN_OR_RETURN(Json ops, Json::Parse(text));
  return Transact(ops);
}

// ---------------------------------------------------------------------------
// TxnBuilder
// ---------------------------------------------------------------------------

std::string TxnBuilder::Insert(std::string_view table,
                               std::map<std::string, Datum> columns) {
  std::string name = StrFormat("row%d", insert_count_++);
  Json::Object row;
  for (const auto& [column, datum] : columns) row[column] = datum.ToJson();
  Json::Object op;
  op["op"] = Json("insert");
  op["table"] = Json(std::string(table));
  op["row"] = Json(std::move(row));
  op["uuid-name"] = Json(name);
  ops_.push_back(Json(std::move(op)));
  return name;
}

namespace {
Json WhereToJson(const std::vector<Clause>& where) {
  Json::Array out;
  for (const Clause& clause : where) {
    out.push_back(Json(Json::Array{Json(clause.column), Json(clause.function),
                                   clause.value.ToJson()}));
  }
  return Json(std::move(out));
}
}  // namespace

void TxnBuilder::Update(std::string_view table, std::vector<Clause> where,
                        std::map<std::string, Datum> columns) {
  Json::Object row;
  for (const auto& [column, datum] : columns) row[column] = datum.ToJson();
  Json::Object op;
  op["op"] = Json("update");
  op["table"] = Json(std::string(table));
  op["where"] = WhereToJson(where);
  op["row"] = Json(std::move(row));
  ops_.push_back(Json(std::move(op)));
}

void TxnBuilder::Mutate(
    std::string_view table, std::vector<Clause> where,
    std::vector<std::tuple<std::string, std::string, Datum>> mutations) {
  Json::Array mutations_json;
  for (auto& [column, mutator, value] : mutations) {
    mutations_json.push_back(
        Json(Json::Array{Json(column), Json(mutator), value.ToJson()}));
  }
  Json::Object op;
  op["op"] = Json("mutate");
  op["table"] = Json(std::string(table));
  op["where"] = WhereToJson(where);
  op["mutations"] = Json(std::move(mutations_json));
  ops_.push_back(Json(std::move(op)));
}

void TxnBuilder::MutateSetKey(std::string_view table,
                              std::vector<Clause> where,
                              std::string_view column, Atom key, Atom value) {
  Mutate(table, std::move(where),
         {{std::string(column), "setkey",
           Datum::Map({{std::move(key), std::move(value)}})}});
}

void TxnBuilder::MutateDelKey(std::string_view table,
                              std::vector<Clause> where,
                              std::string_view column, Atom key) {
  Mutate(table, std::move(where),
         {{std::string(column), "delkey", Datum::Set({std::move(key)})}});
}

void TxnBuilder::Delete(std::string_view table, std::vector<Clause> where) {
  Json::Object op;
  op["op"] = Json("delete");
  op["table"] = Json(std::string(table));
  op["where"] = WhereToJson(where);
  ops_.push_back(Json(std::move(op)));
}

void TxnBuilder::AssertFence(int64_t epoch) {
  Json::Object op;
  op["op"] = Json("assert_fence");
  op["epoch"] = Json(epoch);
  ops_.push_back(Json(std::move(op)));
}

Json TxnBuilder::RefByName(std::string_view name) {
  return Json(Json::Array{Json("named-uuid"), Json(std::string(name))});
}

Result<std::vector<Uuid>> TxnBuilder::Commit() {
  NERPA_ASSIGN_OR_RETURN(Json results, db_->Transact(Json(std::move(ops_))));
  ops_.clear();
  insert_count_ = 0;
  std::vector<Uuid> inserted;
  for (const Json& result : results.as_array()) {
    const Json* uuid_json = result.Find("uuid");
    if (uuid_json == nullptr) continue;
    auto uuid = Uuid::Parse(uuid_json->as_array()[1].as_string());
    if (uuid) inserted.push_back(*uuid);
  }
  return inserted;
}

}  // namespace nerpa::ovsdb
