// A fixed-size worker pool for dispatching independent tasks.
//
// The controller uses this to push P4Runtime writes to distinct devices in
// parallel: each device's ordered write batch becomes one task, so
// per-device write order is preserved while devices proceed concurrently.
// The pool is deliberately minimal — submit void() tasks, wait for the
// queue to drain — because all result/error plumbing lives with the
// callers, which capture their own output slots.
#ifndef NERPA_COMMON_THREAD_POOL_H_
#define NERPA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nerpa {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(size_t threads);
  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t threads() const { return workers_.size(); }

  /// Enqueues `task` for execution on a worker thread.  Tasks must not
  /// throw; they run in submission order but complete in any order.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing.
  void WaitIdle();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait here for tasks
  std::condition_variable idle_cv_;  // WaitIdle waits here for the drain
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;  // tasks currently executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace nerpa

#endif  // NERPA_COMMON_THREAD_POOL_H_
