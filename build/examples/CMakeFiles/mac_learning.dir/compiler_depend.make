# Empty compiler generated dependencies file for mac_learning.
# This may be replaced when dependencies are built.
