// Tests for the OVSDB wire layer: JSON-RPC messages, stream splitting,
// and a live TCP server/client exchange with monitors.
#include <gtest/gtest.h>

#include "common/strings.h"
#include "ovsdb/client.h"
#include "ovsdb/server.h"
#include "snvs/snvs.h"

namespace nerpa::ovsdb {
namespace {

TEST(JsonRpc, MessageRoundTrip) {
  JsonRpcMessage request = JsonRpcMessage::Request(
      "transact", Json(Json::Array{Json("db")}), Json(int64_t{7}));
  auto back = JsonRpcMessage::FromJson(Json::Parse(request.ToJson().Dump())
                                           .value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, JsonRpcMessage::Kind::kRequest);
  EXPECT_EQ(back->method, "transact");
  EXPECT_EQ(back->id.as_integer(), 7);

  JsonRpcMessage notification = JsonRpcMessage::Notification(
      "update", Json(Json::Array{}));
  back = JsonRpcMessage::FromJson(
      Json::Parse(notification.ToJson().Dump()).value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, JsonRpcMessage::Kind::kNotification);

  JsonRpcMessage response =
      JsonRpcMessage::Response(Json(int64_t{1}), Json(int64_t{7}));
  back = JsonRpcMessage::FromJson(
      Json::Parse(response.ToJson().Dump()).value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, JsonRpcMessage::Kind::kResponse);
  EXPECT_TRUE(back->error.is_null());
}

TEST(JsonStreamSplitter, SplitsConcatenatedAndFragmented) {
  JsonStreamSplitter splitter;
  std::vector<std::string> documents;
  auto collect = [&](std::string_view text) -> Status {
    documents.emplace_back(text);
    return Status::Ok();
  };
  // Two messages in one chunk, then one split across three chunks, with a
  // brace inside a string to trip naive splitters.
  ASSERT_TRUE(splitter.Feed(R"({"a":1}{"b":[1,2]})", collect).ok());
  ASSERT_TRUE(splitter.Feed(R"({"c":"}{", )", collect).ok());
  ASSERT_TRUE(splitter.Feed(R"("d": "\"}")", collect).ok());
  ASSERT_TRUE(splitter.Feed("}", collect).ok());
  ASSERT_EQ(documents.size(), 3u);
  EXPECT_EQ(documents[0], R"({"a":1})");
  EXPECT_EQ(documents[1], R"({"b":[1,2]})");
  auto third = Json::Parse(documents[2]);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->Find("c")->as_string(), "}{");
  EXPECT_EQ(third->Find("d")->as_string(), "\"}");
}

TEST(JsonStreamSplitter, RejectsUnbalanced) {
  JsonStreamSplitter splitter;
  auto ignore = [](std::string_view) { return Status::Ok(); };
  EXPECT_FALSE(splitter.Feed("}}", ignore).ok());
}

class RpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<OvsdbServer>(
        std::make_unique<Database>(snvs::SnvsSchema()));
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port()).ok());
  }

  void TearDown() override {
    client_.Disconnect();
    server_->Stop();
  }

  std::unique_ptr<OvsdbServer> server_;
  OvsdbClient client_;
};

TEST_F(RpcTest, EchoAndSchema) {
  ASSERT_TRUE(client_.Echo().ok());
  auto schema = client_.GetSchema();
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->name, "snvs");
  EXPECT_NE(schema->FindTable("Port"), nullptr);
}

TEST_F(RpcTest, TransactOverTheWire) {
  auto result = client_.Transact(Json::Parse(R"([
    {"op": "insert", "table": "Port",
     "row": {"name": "p1", "port": 1, "vlan_mode": "access", "tag": 10}}
  ])").value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->is_array());
  EXPECT_NE(result->as_array()[0].Find("uuid"), nullptr);

  // Errors come back as JSON-RPC errors.
  result = client_.Transact(Json::Parse(R"([
    {"op": "insert", "table": "Port",
     "row": {"name": "p2", "port": 2, "vlan_mode": "bogus", "tag": 1}}
  ])").value());
  EXPECT_FALSE(result.ok());
}

TEST_F(RpcTest, MonitorStreamsUpdates) {
  int updates_seen = 0;
  Json last_update;
  auto initial = client_.Monitor(
      Json("m1"), {"Port"}, [&](const Json& id, const Json& updates) {
        (void)id;
        ++updates_seen;
        last_update = updates;
      });
  ASSERT_TRUE(initial.ok()) << initial.status().ToString();
  EXPECT_TRUE(initial->as_object().empty());  // empty db: empty snapshot

  ASSERT_TRUE(client_.Transact(Json::Parse(R"([
    {"op": "insert", "table": "Port",
     "row": {"name": "p1", "port": 1, "vlan_mode": "access", "tag": 10}}
  ])").value()).ok());
  auto delivered = client_.WaitForUpdate(2000);
  ASSERT_TRUE(delivered.ok()) << delivered.status().ToString();
  ASSERT_GE(*delivered, 1);
  EXPECT_EQ(updates_seen, 1);
  const Json* port_updates = last_update.Find("Port");
  ASSERT_NE(port_updates, nullptr);
  ASSERT_EQ(port_updates->as_object().size(), 1u);
  const Json& row = port_updates->as_object().begin()->second;
  EXPECT_EQ(row.Find("new")->Find("name")->as_string(), "p1");
  EXPECT_EQ(row.Find("old"), nullptr);  // insert: no old

  // A second client gets the current contents in its initial snapshot.
  OvsdbClient late;
  ASSERT_TRUE(late.Connect("127.0.0.1", server_->port()).ok());
  auto late_initial =
      late.Monitor(Json("m2"), {"Port"}, [](const Json&, const Json&) {});
  ASSERT_TRUE(late_initial.ok());
  ASSERT_NE(late_initial->Find("Port"), nullptr);
  EXPECT_EQ(late_initial->Find("Port")->as_object().size(), 1u);

  // Cancel stops the stream.
  ASSERT_TRUE(client_.MonitorCancel(Json("m1")).ok());
  ASSERT_TRUE(client_.Transact(Json::Parse(R"([
    {"op": "delete", "table": "Port", "where": []}
  ])").value()).ok());
  delivered = client_.WaitForUpdate(300);
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, 0);
}

// --- Self-healing session semantics -----------------------------------

Status InsertPort(OvsdbClient& client, const std::string& name, int64_t port) {
  return client
      .Transact(Json::Parse(StrFormat(
                                R"([{"op": "insert", "table": "Port",
                                     "row": {"name": "%s", "port": %lld,
                                             "vlan_mode": "access",
                                             "tag": 10}}])",
                                name.c_str(), static_cast<long long>(port)))
                    .value())
      .status();
}

TEST_F(RpcTest, HealReplaysExactlyTheMissedDeltas) {
  OvsdbClient::HealPolicy heal;
  heal.enabled = true;
  client_.set_heal_policy(heal);

  // Count every distinct insert delivered, keyed by port name, to pin
  // down exactly-once delivery across the reconnect.
  std::map<std::string, int> seen;
  auto initial = client_.Monitor(
      Json("m1"), {"Port"}, [&](const Json&, const Json& updates) {
        const Json* ports = updates.Find("Port");
        if (ports == nullptr) return;
        for (const auto& [uuid, delta] : ports->as_object()) {
          const Json* row = delta.Find("new");
          if (row != nullptr) ++seen[row->Find("name")->as_string()];
        }
      });
  ASSERT_TRUE(initial.ok()) << initial.status().ToString();

  OvsdbClient writer;
  ASSERT_TRUE(writer.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(InsertPort(writer, "p1", 1).ok());
  auto delivered = client_.WaitForUpdate(2000);
  ASSERT_TRUE(delivered.ok());
  ASSERT_EQ(*delivered, 1);

  // Kill the transport, then commit twice while the session is down.
  client_.InjectTransportFault();
  ASSERT_TRUE(InsertPort(writer, "p2", 2).ok());
  ASSERT_TRUE(InsertPort(writer, "p3", 3).ok());

  // The next pump notices the dead transport, reconnects, and replays
  // exactly the two missed deltas — p1 is not delivered again.
  delivered = client_.Poll();
  ASSERT_TRUE(delivered.ok()) << delivered.status().ToString();
  EXPECT_EQ(*delivered, 2);
  EXPECT_EQ(client_.session_stats().reconnects, 1u);
  EXPECT_EQ(client_.session_stats().replayed_updates, 2u);
  EXPECT_EQ(client_.session_stats().full_redumps, 0u);
  EXPECT_EQ(seen["p1"], 1);
  EXPECT_EQ(seen["p2"], 1);
  EXPECT_EQ(seen["p3"], 1);

  // The healed session streams live again.
  ASSERT_TRUE(InsertPort(writer, "p4", 4).ok());
  delivered = client_.WaitForUpdate(2000);
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, 1);
  EXPECT_EQ(seen["p4"], 1);
}

TEST(RpcHeal, FullRedumpWhenGapAgedOutOfHistory) {
  auto server = std::make_unique<OvsdbServer>(
      std::make_unique<Database>(snvs::SnvsSchema()));
  server->set_history_limit(1);
  ASSERT_TRUE(server->Start().ok());

  OvsdbClient client;
  OvsdbClient::HealPolicy heal;
  heal.enabled = true;
  client.set_heal_policy(heal);
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  int full_dump_rows = 0;
  ASSERT_TRUE(client
                  .Monitor(Json("m"), {"Port"},
                           [&](const Json&, const Json& updates) {
                             const Json* ports = updates.Find("Port");
                             if (ports == nullptr) return;
                             full_dump_rows =
                                 static_cast<int>(ports->as_object().size());
                           })
                  .ok());

  OvsdbClient writer;
  ASSERT_TRUE(writer.Connect("127.0.0.1", server->port()).ok());
  client.InjectTransportFault();
  ASSERT_TRUE(InsertPort(writer, "p1", 1).ok());
  ASSERT_TRUE(InsertPort(writer, "p2", 2).ok());
  ASSERT_TRUE(InsertPort(writer, "p3", 3).ok());

  // Three commits but a one-entry history: the gap aged out, so the heal
  // falls back to a full dump carrying the complete current contents.
  auto delivered = client.Poll();
  ASSERT_TRUE(delivered.ok()) << delivered.status().ToString();
  EXPECT_GE(*delivered, 1);
  EXPECT_EQ(client.session_stats().full_redumps, 1u);
  EXPECT_EQ(full_dump_rows, 3);

  client.Disconnect();
  server->Stop();
}

TEST_F(RpcTest, MonitorCancelOfDeadSessionIsNoOp) {
  ASSERT_TRUE(client_
                  .Monitor(Json("m1"), {"Port"},
                           [](const Json&, const Json&) {})
                  .ok());
  client_.InjectTransportFault();
  // Healing is off: the session is simply dead.  Cancelling a monitor we
  // held is a local no-op success; the server half died with the socket.
  EXPECT_TRUE(client_.MonitorCancel(Json("m1")).ok());
  // An id that was never registered still surfaces the transport error.
  EXPECT_FALSE(client_.MonitorCancel(Json("never-registered")).ok());
}

TEST_F(RpcTest, OverlappingMonitorIdsRejected) {
  ASSERT_TRUE(client_
                  .Monitor(Json("dup"), {"Port"},
                           [](const Json&, const Json&) {})
                  .ok());
  auto second = client_.Monitor(Json("dup"), {"Mirror"},
                                [](const Json&, const Json&) {});
  EXPECT_FALSE(second.ok());
  // Distinct sessions may reuse the id: it is per-session, not global.
  OvsdbClient other;
  ASSERT_TRUE(other.Connect("127.0.0.1", server_->port()).ok());
  EXPECT_TRUE(other
                  .Monitor(Json("dup"), {"Port"},
                           [](const Json&, const Json&) {})
                  .ok());
}

TEST_F(RpcTest, TransactHealsAcrossTransportFault) {
  OvsdbClient::HealPolicy heal;
  heal.enabled = true;
  client_.set_heal_policy(heal);
  client_.InjectTransportFault();
  // The first send fails on the dead socket; the client reconnects and
  // retries the call once.
  EXPECT_TRUE(InsertPort(client_, "p1", 1).ok());
  EXPECT_EQ(client_.session_stats().reconnects, 1u);
}

TEST_F(RpcTest, TransactRetryAfterLostResponseAppliesExactlyOnce) {
  OvsdbClient::HealPolicy heal;
  heal.enabled = true;
  client_.set_heal_policy(heal);
  // Kill only the receive half: the transact still reaches the server and
  // is applied, but the response is lost — the worst case for a retried
  // non-idempotent call.
  client_.InjectReceiveFault();
  ASSERT_TRUE(InsertPort(client_, "p1", 1).ok());
  EXPECT_EQ(client_.session_stats().reconnects, 1u);
  // The healed retry re-sent the same request id, and the server answered
  // it from its response cache instead of applying a second time.
  EXPECT_EQ(server_->transacts_deduped(), 1u);
  // Ground truth: a fresh client's initial monitor dump holds exactly one
  // Port row, not two.
  OvsdbClient observer;
  ASSERT_TRUE(observer.Connect("127.0.0.1", server_->port()).ok());
  auto initial = observer.Monitor(Json("obs"), {"Port"},
                                  [](const Json&, const Json&) {});
  ASSERT_TRUE(initial.ok()) << initial.status().ToString();
  const Json* ports = initial->Find("Port");
  ASSERT_NE(ports, nullptr);
  EXPECT_EQ(ports->as_object().size(), 1u);
}

TEST(RpcHeal, ServerRestartForcesFullDumpNotBogusDeltaReplay) {
  auto server = std::make_unique<OvsdbServer>(
      std::make_unique<Database>(snvs::SnvsSchema()));
  ASSERT_TRUE(server->Start().ok());
  uint16_t port = server->port();

  OvsdbClient client;
  OvsdbClient::HealPolicy heal;
  heal.enabled = true;
  client.set_heal_policy(heal);
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  std::map<std::string, int> seen;
  ASSERT_TRUE(client
                  .Monitor(Json("m"), {"Port"},
                           [&](const Json&, const Json& updates) {
                             const Json* ports = updates.Find("Port");
                             if (ports == nullptr) return;
                             for (const auto& [uuid, delta] :
                                  ports->as_object()) {
                               const Json* row = delta.Find("new");
                               if (row != nullptr) {
                                 ++seen[row->Find("name")->as_string()];
                               }
                             }
                           })
                  .ok());
  {
    OvsdbClient writer;
    ASSERT_TRUE(writer.Connect("127.0.0.1", port).ok());
    ASSERT_TRUE(InsertPort(writer, "old1", 1).ok());
    ASSERT_TRUE(InsertPort(writer, "old2", 2).ok());
  }
  // Drain both live updates so the client's last-txn-id advances to 2.
  for (int waited = 0; seen["old2"] == 0 && waited < 40; ++waited) {
    ASSERT_TRUE(client.WaitForUpdate(100).ok());
  }
  ASSERT_EQ(seen["old2"], 1);

  // Replace the server: same port, fresh database, txn counter back at 0.
  server->Stop();
  server = std::make_unique<OvsdbServer>(
      std::make_unique<Database>(snvs::SnvsSchema()));
  ASSERT_TRUE(server->Start(port).ok()) << "port rebind failed";
  OvsdbClient writer;
  ASSERT_TRUE(writer.Connect("127.0.0.1", port).ok());
  ASSERT_TRUE(InsertPort(writer, "new1", 1).ok());
  ASSERT_TRUE(InsertPort(writer, "new2", 2).ok());
  ASSERT_TRUE(InsertPort(writer, "new3", 3).ok());

  // The client resumes holding last-txn-id 2 — numerically plausible
  // against the new incarnation's history (it holds txns 1..3), but from
  // an unrelated counter.  The epoch mismatch forces found=false: one
  // full dump of the new contents, not a delta replay that would
  // silently miss new1 and new2.
  auto healed = client.Poll();
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(client.session_stats().full_redumps, 1u);
  EXPECT_EQ(seen["new1"], 1);
  EXPECT_EQ(seen["new2"], 1);
  EXPECT_EQ(seen["new3"], 1);

  client.Disconnect();
  server->Stop();
}

TEST_F(RpcTest, TwoClientsSeeEachOthersCommits) {
  OvsdbClient other;
  ASSERT_TRUE(other.Connect("127.0.0.1", server_->port()).ok());
  int updates = 0;
  ASSERT_TRUE(other
                  .Monitor(Json("watch"), {},
                           [&](const Json&, const Json&) { ++updates; })
                  .ok());
  ASSERT_TRUE(client_.Transact(Json::Parse(R"([
    {"op": "insert", "table": "Mirror",
     "row": {"name": "m", "src_port": 1, "out_port": 9}}
  ])").value()).ok());
  auto delivered = other.WaitForUpdate(2000);
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, 1);
  EXPECT_EQ(updates, 1);
}

// --- Scale features over the wire: fetch, column-scoped monitors,
// priority sessions + slow-consumer shedding, stats thread-safety ---

TEST_F(RpcTest, FetchOnDemandOverTheWire) {
  ASSERT_TRUE(client_.Transact(Json::Parse(R"([
    {"op": "insert", "table": "Port",
     "row": {"name": "p1", "port": 1, "vlan_mode": "access", "tag": 10}},
    {"op": "insert", "table": "Port",
     "row": {"name": "p2", "port": 2, "vlan_mode": "trunk", "tag": 20}}
  ])").value()).ok());

  auto fetched = client_.Fetch("Port", Json::Parse(R"([["name","==","p2"]])")
                                           .value(), {"tag", "vlan_mode"});
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  const Json::Array& rows = fetched->Find("rows")->as_array();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Find("tag")->as_integer(), 20);
  EXPECT_EQ(rows[0].Find("vlan_mode")->as_string(), "trunk");
  EXPECT_EQ(rows[0].Find("name"), nullptr);  // not requested

  // Unknown table and unknown column surface as errors, not crashes.
  EXPECT_FALSE(client_.Fetch("Nope", Json(Json::Array{}), {}).ok());
  EXPECT_FALSE(client_.Fetch("Port", Json(Json::Array{}), {"bogus"}).ok());
}

TEST_F(RpcTest, ColumnScopedMonitorOverTheWire) {
  int updates_seen = 0;
  Json last_update;
  auto initial = client_.MonitorColumns(
      Json("cols"), {{"Port", {"name"}}},
      [&](const Json&, const Json& updates) {
        ++updates_seen;
        last_update = updates;
      });
  ASSERT_TRUE(initial.ok()) << initial.status().ToString();

  ASSERT_TRUE(client_.Transact(Json::Parse(R"([
    {"op": "insert", "table": "Port",
     "row": {"name": "p1", "port": 1, "vlan_mode": "access", "tag": 10}}
  ])").value()).ok());
  ASSERT_GE(client_.WaitForUpdate(2000).value(), 1);
  ASSERT_EQ(updates_seen, 1);
  // The insert arrives projected: name only.
  const Json::Object& rows = last_update.Find("Port")->as_object();
  ASSERT_EQ(rows.size(), 1u);
  const Json& new_row = *rows.begin()->second.Find("new");
  EXPECT_NE(new_row.Find("name"), nullptr);
  EXPECT_EQ(new_row.Find("tag"), nullptr);

  // A commit touching only unselected columns produces no notification.
  ASSERT_TRUE(client_.Transact(Json::Parse(R"([
    {"op": "update", "table": "Port", "where": [["name", "==", "p1"]],
     "row": {"tag": 99}}
  ])").value()).ok());
  // A selected-column change right after must be the NEXT thing seen.
  ASSERT_TRUE(client_.Transact(Json::Parse(R"([
    {"op": "update", "table": "Port", "where": [["name", "==", "p1"]],
     "row": {"name": "p1b"}}
  ])").value()).ok());
  ASSERT_GE(client_.WaitForUpdate(2000).value(), 1);
  EXPECT_EQ(updates_seen, 2);  // tag-only commit was invisible
  EXPECT_EQ(last_update.Find("Port")->as_object().begin()
                ->second.Find("new")->Find("name")->as_string(), "p1b");
}

TEST(RpcPriority, PrioritySessionSurvivesSlowConsumerShed) {
  OvsdbServer server(std::make_unique<Database>(snvs::SnvsSchema()));
  server.set_max_outbox_bytes(8 * 1024);  // tiny cap: shed fast
  server.set_send_buffer_bytes(4 * 1024); // tiny SO_SNDBUF: back up fast
  ASSERT_TRUE(server.Start().ok());

  // Two monitor subscribers that stop reading, one of them priority, and
  // one writer blasting fat rows through.
  OvsdbClient slow, priority, writer;
  ASSERT_TRUE(slow.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(priority.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(writer.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(priority.SetPriority(1).ok());
  int slow_updates = 0, priority_updates = 0;
  ASSERT_TRUE(slow.Monitor(Json("s"), {"Port"},
                           [&](const Json&, const Json&) { ++slow_updates; })
                  .ok());
  ASSERT_TRUE(priority.Monitor(Json("p"), {"Port"},
                               [&](const Json&, const Json&) {
                                 ++priority_updates;
                               })
                  .ok());

  // ~4KB per row; neither subscriber polls, so the kernel buffers fill and
  // outboxes grow until the cap sheds the non-priority session.
  std::string fat(4000, 'x');
  for (int i = 0; i < 100 && server.slow_consumer_drops() == 0; ++i) {
    std::string op = StrFormat(
        R"([{"op": "insert", "table": "Port",
             "row": {"name": "%s-%d", "port": %d,
                     "vlan_mode": "access", "tag": 1}}])",
        fat.c_str(), i, i % 60000);
    ASSERT_TRUE(writer.Transact(Json::Parse(op).value()).ok());
  }
  EXPECT_GE(server.slow_consumer_drops(), 1u);

  // The priority session was exempt: it can still drain its stream.
  auto drained = priority.WaitForUpdate(2000);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_GE(priority_updates, 1);

  // The shed session is really gone: its next read hits a closed socket.
  bool slow_dead = false;
  for (int i = 0; i < 100 && !slow_dead; ++i) {
    auto poll = slow.Poll();
    if (!poll.ok()) slow_dead = true;
  }
  EXPECT_TRUE(slow_dead);
  server.Stop();
}

TEST_F(RpcTest, SessionStatsReadableWhileHealing) {
  // TSan regression (the PR-3 stats_mu_ fix, client edition): a
  // supervisor thread sampling session_stats() must not race the owning
  // thread bumping counters mid-heal.
  OvsdbClient::HealPolicy policy;
  policy.enabled = true;
  client_.set_heal_policy(policy);
  ASSERT_TRUE(client_.Monitor(Json("m"), {"Port"},
                              [](const Json&, const Json&) {})
                  .ok());
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> sampled{0};
  std::thread sampler([&] {
    while (!stop.load(std::memory_order_acquire)) {
      OvsdbClient::SessionStats stats = client_.session_stats();
      sampled.fetch_add(stats.reconnects + 1, std::memory_order_relaxed);
      (void)server_->requests_served();
      (void)server_->slow_consumer_drops();
    }
  });
  for (int i = 0; i < 20; ++i) {
    client_.InjectTransportFault();
    std::string op = StrFormat(
        R"([{"op": "insert", "table": "Port",
             "row": {"name": "p%d", "port": %d,
                     "vlan_mode": "access", "tag": 1}}])", i, i + 1);
    ASSERT_TRUE(client_.Transact(Json::Parse(op).value()).ok());
  }
  stop.store(true, std::memory_order_release);
  sampler.join();
  EXPECT_GE(client_.session_stats().reconnects, 20u);
  EXPECT_GT(sampled.load(), 0u);
}

}  // namespace
}  // namespace nerpa::ovsdb
