file(REMOVE_RECURSE
  "CMakeFiles/test_dlog_engine.dir/test_dlog_engine.cc.o"
  "CMakeFiles/test_dlog_engine.dir/test_dlog_engine.cc.o.d"
  "test_dlog_engine"
  "test_dlog_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dlog_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
