// The northbound gateway: an async HTTP/1.1 + JSON-RPC front door that
// translates REST-ish routes into OVSDB operations against an OvsdbServer.
//
// Architecture (one epoll event loop + a worker pool + a monitor pump):
//
//   clients ──HTTP──> event loop ──(admitted work)──> ThreadPool workers
//                        │  ▲                              │
//                        │  └──── completion queue ◄───────┘
//                        │            (wake pipe)     pooled OvsdbClients
//                        ▼
//                    ReadCache ◄──Bump(table)── monitor pump thread
//                                               (OVSDB update stream)
//
//  - The event loop owns every connection: it parses requests, serves
//    local routes (healthz, stats, changes, cache hits) inline, and hands
//    backend-bound work to the pool.  Responses come back through a
//    completion queue so only the event loop ever touches sockets.
//  - Each pool worker borrows a dedicated backend OvsdbClient (one per
//    worker, so a free client always exists) with self-healing enabled.
//  - The pump thread holds a monitor over every table; each update bumps
//    the per-table cache generation (read-through invalidation) and feeds
//    the bounded /v1/changes ring.
//  - Admission control (token bucket + inflight cap) guards backend-bound
//    requests; shed requests get 503 + Retry-After.  Cache hits bypass
//    admission — they cost the backend nothing.
//  - Per-connection backpressure: requests queue per connection (served in
//    order, one backend op in flight per connection); when the queue is
//    full the gateway stops reading that socket, pushing back through TCP.
//    A connection whose outbox exceeds the cap (peer stopped reading) is
//    dropped.
#ifndef NERPA_GATEWAY_GATEWAY_H_
#define NERPA_GATEWAY_GATEWAY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/json.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/watchdog.h"
#include "gateway/admission.h"
#include "gateway/cache.h"
#include "gateway/http.h"
#include "ovsdb/client.h"
#include "ovsdb/schema.h"

namespace nerpa::gateway {

class Gateway {
 public:
  /// Answer to a /readyz probe.  Liveness (/healthz) says "the process is
  /// up"; readiness says "this instance should receive traffic" — in a
  /// hot-standby deployment only the gateway in front of the *leader*
  /// controller is ready, and a follower's 503 carries a leader hint so
  /// clients (and load balancers) can re-aim without a discovery round.
  struct Readiness {
    bool ready = true;
    std::string leader_hint;  // X-Nerpa-Leader header when not ready
  };

  struct Options {
    std::string backend_host = "127.0.0.1";
    uint16_t backend_port = 0;       // OvsdbServer port (required)
    uint16_t http_port = 0;          // 0 = ephemeral
    int workers = 4;                 // worker threads == backend clients
    size_t cache_entries = ReadCache::kDefaultMaxEntries;
    double admit_rate_per_sec = 0;   // 0 = no rate limit
    double admit_burst = 256;
    size_t max_inflight = 64;        // concurrent backend ops (0 = unlimited)
    size_t max_pending_per_conn = 16;
    size_t max_outbox_bytes = 4u << 20;
    size_t changes_ring_capacity = 1024;

    /// Default per-request deadline budget, applied when the client sends
    /// no X-Nerpa-Deadline-Ms header (0 = requests without the header run
    /// unbounded, the old behaviour).  The deadline rides every backend
    /// RPC: expired requests are dropped at worker dequeue with 504 and
    /// refused by the OVSDB server before evaluation.
    int64_t default_deadline_nanos = 0;

    /// Optional shared watchdog (not owned): the monitor pump beats
    /// "gateway.pump" each cycle, /readyz reports 503 while any subsystem
    /// is stuck, and /v1/stats exposes the full health snapshot.
    Watchdog* watchdog = nullptr;

    /// Readiness provider for /readyz (called per probe, must be
    /// thread-safe).  Null = always ready, the single-controller default.
    std::function<Readiness()> readiness;
  };

  explicit Gateway(Options options);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Connects the backend clients, fetches the schema, registers the
  /// monitor pump, binds the HTTP port, and starts the event loop.
  Status Start();

  /// Graceful shutdown: stop accepting, let in-flight requests finish and
  /// outboxes flush (bounded by kDrainDeadlineMs), then tear down threads.
  /// Idempotent.
  void Stop();

  /// The bound HTTP port (valid after Start()).
  uint16_t http_port() const { return http_port_; }

  // Introspection for tests and /v1/stats.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  uint64_t slow_client_drops() const {
    return slow_client_drops_.load(std::memory_order_relaxed);
  }
  /// Requests dropped at worker dequeue because their deadline had
  /// already expired (answered 504 without touching the backend).
  uint64_t deadline_drops() const {
    return deadline_drops_.load(std::memory_order_relaxed);
  }
  /// Possibly-stale cached reads served during brownout (X-Nerpa-Stale).
  uint64_t stale_served() const {
    return stale_served_.load(std::memory_order_relaxed);
  }
  const ReadCache& cache() const { return cache_; }
  const AdmissionController& admission() const { return admission_; }

  /// Bound on the final in-flight + outbox drain during Stop() (ms).
  static constexpr int kDrainDeadlineMs = 2000;

 private:
  struct Conn {
    int fd = -1;
    HttpParser parser;
    std::deque<HttpRequest> pending;  // parsed, unanswered (in order)
    bool inflight = false;            // a backend op is out for this conn
    std::string outbox;
    bool close_after_flush = false;
    bool reading_paused = false;      // pending full -> TCP backpressure
    bool want_write = false;          // EPOLLOUT currently registered
  };

  void EventLoop();
  void PumpThread();

  void AcceptClients();
  void ReadConn(uint64_t id);
  void WriteConn(uint64_t id);
  void CloseConn(uint64_t id);
  void UpdateInterest(uint64_t id);
  /// Serves queued requests for `id` in order until one goes to a worker
  /// (or the queue empties).
  void ServeConn(uint64_t id);
  void QueueResponse(uint64_t id, const HttpResponse& response,
                     bool keep_alive);
  void DrainCompletions();

  /// Routes one request.  Local routes return a response immediately;
  /// backend routes submit a worker job and set `conn.inflight`.
  void Dispatch(uint64_t id, Conn& conn, HttpRequest request);
  HttpResponse HandleStats() const;
  HttpResponse HandleChanges(const HttpRequest& request) const;
  /// Builds a typed OVSDB where-clause array from query parameters using
  /// the schema (400 on unknown column / untypeable value).
  Result<Json> WhereFromQuery(const ovsdb::TableSchema& table,
                              const std::map<std::string, std::string>& query)
      const;

  /// Submits a backend job; `work` runs on a pool worker with a borrowed
  /// client and must return the response to send.  A job whose `deadline`
  /// expired while queued is answered 504 at dequeue without touching the
  /// backend; completed jobs feed their round-trip latency into the
  /// adaptive admission limit.
  void SubmitBackend(
      uint64_t id, bool keep_alive, bool admitted, Deadline deadline,
      std::function<HttpResponse(ovsdb::OvsdbClient&, const Deadline&)> work);

  /// StatusResponse plus overload headers: 503s carry the admission
  /// controller's computed Retry-After instead of a constant.
  HttpResponse BackendError(const Status& status) const;

  size_t AcquireClient();
  void ReleaseClient(size_t index);

  // Backend request bodies (run on workers).
  HttpResponse DoTableRead(ovsdb::OvsdbClient& client, std::string table,
                           Json where, std::vector<std::string> columns,
                           std::string cache_key, bool cacheable, bool single,
                           uint64_t generation, const Deadline& deadline);
  HttpResponse DoTransact(ovsdb::OvsdbClient& client, std::string body,
                          const Deadline& deadline);
  HttpResponse DoJsonRpc(ovsdb::OvsdbClient& client, std::string body,
                         const Deadline& deadline);

  Options options_;
  uint16_t http_port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};

  ovsdb::DatabaseSchema schema_;
  ReadCache cache_;
  AdmissionController admission_;

  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<ovsdb::OvsdbClient>> clients_;
  std::mutex clients_mu_;
  std::condition_variable clients_cv_;
  std::vector<size_t> free_clients_;

  // Completion queue: workers -> event loop.
  std::mutex completions_mu_;
  struct Completion {
    uint64_t conn_id;
    HttpResponse response;
    bool keep_alive;
  };
  std::deque<Completion> completions_;

  // /v1/changes ring, fed by the pump thread.
  mutable std::mutex changes_mu_;
  struct Change {
    uint64_t seq;
    std::string table;
  };
  std::deque<Change> changes_;
  uint64_t change_seq_ = 0;

  std::thread event_thread_;
  std::thread pump_thread_;
  std::unique_ptr<ovsdb::OvsdbClient> pump_client_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::map<uint64_t, Conn> conns_;  // event-loop only
  uint64_t next_conn_id_ = 16;      // ids < 16 reserved (listen/wake)

  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> slow_client_drops_{0};
  std::atomic<uint64_t> deadline_drops_{0};
  std::atomic<uint64_t> stale_served_{0};
};

}  // namespace nerpa::gateway

#endif  // NERPA_GATEWAY_GATEWAY_H_
