#include "analyze/diag.h"

#include <algorithm>
#include <tuple>

#include "common/strings.h"

namespace nerpa::analyze {

const char* SeverityName(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

Json Diagnostic::ToJson() const {
  Json::Object object;
  object["code"] = code;
  object["severity"] = SeverityName(severity);
  object["plane"] = plane;
  object["message"] = message;
  object["unit"] = unit;
  object["line"] = static_cast<int64_t>(line);
  object["col"] = static_cast<int64_t>(col);
  return Json(std::move(object));
}

void SortDiagnostics(std::vector<Diagnostic>& diagnostics) {
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.unit, a.line, a.col, a.code) <
                            std::tie(b.unit, b.line, b.col, b.code);
                   });
}

std::string CaretSnippet(std::string_view source, int line, int col) {
  if (source.empty() || line < 1 || col < 1) return "";
  size_t start = 0;
  for (int current = 1; current < line; ++current) {
    size_t next = source.find('\n', start);
    if (next == std::string_view::npos) return "";
    start = next + 1;
  }
  size_t end = source.find('\n', start);
  std::string_view text = source.substr(
      start, end == std::string_view::npos ? std::string_view::npos
                                           : end - start);
  if (static_cast<size_t>(col) > text.size() + 1) return "";
  std::string gutter = StrFormat("%5d | ", line);
  std::string snippet = gutter + std::string(text) + "\n";
  snippet += std::string(gutter.size() - 2, ' ') + "| " +
             std::string(static_cast<size_t>(col - 1), ' ') + "^\n";
  return snippet;
}

std::string RenderDiagnostic(const Diagnostic& diagnostic,
                             std::string_view dlog_source,
                             std::string_view p4_source,
                             std::string_view dlog_name,
                             std::string_view p4_name) {
  std::string out;
  std::string_view source, name;
  if (diagnostic.unit == "dlog") {
    source = dlog_source;
    name = dlog_name;
  } else if (diagnostic.unit == "p4") {
    source = p4_source;
    name = p4_name;
  }
  if (!name.empty() && diagnostic.line > 0) {
    out += StrFormat("%.*s:%d:%d: ", static_cast<int>(name.size()),
                     name.data(), diagnostic.line, diagnostic.col);
  } else if (!name.empty()) {
    out += std::string(name) + ": ";
  }
  out += StrFormat("%s: %s %s\n", SeverityName(diagnostic.severity),
                   diagnostic.code.c_str(), diagnostic.message.c_str());
  out += CaretSnippet(source, diagnostic.line, diagnostic.col);
  return out;
}

}  // namespace nerpa::analyze
