#include "analyze/analyze.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "analyze/passes.h"
#include "common/strings.h"
#include "dlog/parser.h"
#include "dlog/program.h"

namespace nerpa::analyze {

void Emit(PassContext& context, const char* code, Severity severity,
          const char* plane, std::string message, const char* unit, int line,
          int col) {
  Diagnostic diagnostic;
  diagnostic.code = code;
  diagnostic.severity = severity;
  diagnostic.plane = plane;
  diagnostic.message = std::move(message);
  diagnostic.unit = unit;
  diagnostic.line = line;
  diagnostic.col = col;
  context.diagnostics->push_back(std::move(diagnostic));
}

int Analysis::errors() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

int Analysis::warnings() const {
  return static_cast<int>(diagnostics.size()) - errors();
}

Json Analysis::ToJson() const {
  Json::Array array;
  for (const Diagnostic& d : diagnostics) array.push_back(d.ToJson());
  Json::Object object;
  object["errors"] = static_cast<int64_t>(errors());
  object["warnings"] = static_cast<int64_t>(warnings());
  object["diagnostics"] = Json(std::move(array));
  return Json(std::move(object));
}

namespace {

/// Frontend errors already carry "line L:C:" prefixes (lexer, parser, and
/// compiler all format spans that way); lift the span into the diagnostic so
/// NW001/NW002 render with carets like every other finding.
void ExtractSpan(const std::string& message, int* line, int* col) {
  *line = 0;
  *col = 0;
  int l = 0, c = 0;
  if (std::sscanf(message.c_str(), "line %d:%d:", &l, &c) == 2 && l > 0 &&
      c > 0) {
    *line = l;
    *col = c;
  }
}

void EmitFrontend(PassContext& context, const char* code,
                  const std::string& message) {
  int line = 0, col = 0;
  ExtractSpan(message, &line, &col);
  Emit(context, code, Severity::kError, "dlog", message, "dlog", line, col);
}

/// The shared pipeline once `source` (a complete program) is fixed:
/// parse -> NW1xx lints -> compile -> cross-plane -> P4 checks.
void Analyze(PassContext& context, const std::string& source) {
  Result<dlog::ProgramAst> parsed = dlog::ParseProgram(source);
  if (!parsed.ok()) {
    EmitFrontend(context, "NW001", parsed.status().message());
    if (context.p4 != nullptr) RunP4Checks(context);
    SortDiagnostics(*context.diagnostics);
    return;
  }
  dlog::ProgramAst ast = std::move(parsed).value();
  context.ast = &ast;

  RunDlogLints(context);

  // Compile a copy: ExprPtr nodes are shared, so the resolved types the
  // checker stamps are visible through `ast` too (the range analysis needs
  // them).
  Result<std::shared_ptr<const dlog::Program>> compiled =
      dlog::Program::Compile(ast);
  if (compiled.ok()) {
    context.program = std::move(compiled).value();
  } else {
    // Skip the passthrough when the lints already explain the failure
    // (e.g. NW101/NW104 and the compiler report the same defect).
    bool have_error = false;
    for (const Diagnostic& d : *context.diagnostics) {
      if (d.severity == Severity::kError) have_error = true;
    }
    if (!have_error) {
      EmitFrontend(context, "NW002", compiled.status().message());
    }
  }

  if (context.bindings != nullptr || context.program != nullptr) {
    RunCrossPlaneChecks(context);
  }
  if (context.p4 != nullptr) RunP4Checks(context);

  SortDiagnostics(*context.diagnostics);
  context.ast = nullptr;  // `ast` dies with this frame
}

}  // namespace

Result<Analysis> AnalyzeStack(const StackInput& input,
                              const AnalyzeOptions& options) {
  Analysis analysis;
  PassContext context;
  context.p4 = input.p4;
  context.schema = input.schema;
  context.options = &options;
  context.diagnostics = &analysis.diagnostics;

  Bindings bindings;
  if (input.schema != nullptr && input.p4 != nullptr) {
    Result<Bindings> generated =
        GenerateBindings(*input.schema, *input.p4, input.binding_options);
    if (!generated.ok()) {
      return InvalidArgument(StrFormat(
          "binding generation failed: %s",
          generated.status().message().c_str()));
    }
    bindings = std::move(generated).value();
    context.bindings = &bindings;
  } else if (input.schema != nullptr || input.p4 != nullptr) {
    // A schema alone generates no outputs and a P4 program alone no OVSDB
    // inputs; partial bindings would make NW201/NW204 fire spuriously, so
    // bindings require both planes.  P4-only stacks still get NW3xx.
    context.bindings = nullptr;
  }

  analysis.dlog_source =
      (options.rules_include_decls || context.bindings == nullptr)
          ? input.rules
          : bindings.DeclsText() + input.rules;

  Analyze(context, analysis.dlog_source);
  return analysis;
}

Analysis AnalyzeDlog(std::string_view source, const AnalyzeOptions& options) {
  Analysis analysis;
  analysis.dlog_source = std::string(source);
  PassContext context;
  context.options = &options;
  context.diagnostics = &analysis.diagnostics;
  Analyze(context, analysis.dlog_source);
  return analysis;
}

}  // namespace nerpa::analyze
