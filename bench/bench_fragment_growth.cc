// E1 — Fig. 3: "The growth of OVN's controller codebase and the number of
// OpenFlow fragments over time."
//
// The paper plots OVN's ovn-controller code base and the count of OpenFlow
// program fragments scattered through it growing together across releases,
// as evidence that the conventional architecture sprawls: every new
// feature adds flow-emitting code sites all over the controller.
//
// We cannot re-measure OVN's history, so we reproduce the mechanism: a
// conventional fragment-style controller (src/baseline/fragments.cc)
// implements 12 network features the way OVN does — imperative emitters
// scattering cookie-tagged flows — while the unified approach implements
// the same features as Datalog rules in one program.  Enabling the
// features one by one ("releases") yields the two growth curves:
//
//   conventional: fragment sites + imperative LOC   (grows like Fig. 3)
//   unified:      rules + declarative LOC           (grows far slower)
//
// The unified program for every prefix is additionally compiled through
// the real dlog frontend to prove it is well-formed.
#include "baseline/fragments.h"
#include "bench/bench_util.h"
#include "common/strings.h"
#include "dlog/program.h"

namespace nerpa {
namespace {

using baseline::FeatureInfo;
using baseline::Features;
using baseline::FragmentController;
using baseline::FragmentWorkload;
using baseline::UnifiedFeatureRules;
using bench::Banner;
using bench::Table;

int Run() {
  Banner("E1 / Fig. 3",
         "fragment sprawl: conventional OpenFlow controller vs unified "
         "program");

  FragmentWorkload workload;  // a small fixed deployment
  ofp::FlowSwitch flows;
  FragmentController controller(&flows, workload);

  Table table({"features", "latest feature", "fragment sites", "flows",
               "imperative LOC", "datalog rules", "datalog LOC"});
  int imperative_loc = 0;
  int datalog_rules = 0;
  for (int count = 1; count <= static_cast<int>(Features().size()); ++count) {
    const FeatureInfo& feature = Features()[static_cast<size_t>(count - 1)];
    imperative_loc += feature.imperative_loc;
    datalog_rules += feature.datalog_rules;
    Status enabled = controller.EnableFeatures(count);
    if (!enabled.ok()) {
      std::fprintf(stderr, "%s\n", enabled.ToString().c_str());
      return 1;
    }
    std::string unified = UnifiedFeatureRules(count);
    auto compiled = dlog::Program::Parse(unified);
    if (!compiled.ok()) {
      std::fprintf(stderr, "unified program (features=%d): %s\n", count,
                   compiled.status().ToString().c_str());
      return 1;
    }
    table.AddRow({std::to_string(count), feature.name,
                  std::to_string(controller.FragmentSites()),
                  std::to_string(controller.FlowCount()),
                  std::to_string(imperative_loc),
                  std::to_string(datalog_rules),
                  std::to_string(CountCodeLines(unified))});
  }
  table.Print();
  std::printf(
      "\npaper reference: Fig. 3 shows ovn-controller's code base and its\n"
      "scattered OpenFlow fragments growing at the same rate over six\n"
      "years.  Expected shape here: fragment sites and imperative LOC climb\n"
      "together with every feature, while the unified program adds a few\n"
      "rules per feature and every prefix still type-checks as one\n"
      "program.\n");
  return 0;
}

}  // namespace
}  // namespace nerpa

int main() { return nerpa::Run(); }
