file(REMOVE_RECURSE
  "libnerpa_core.a"
)
