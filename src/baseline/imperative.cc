#include "baseline/imperative.h"

#include <algorithm>

namespace nerpa::baseline {

namespace {

/// Best learn per (vlan, mac): highest seq wins.
std::map<std::pair<int64_t, int64_t>, std::pair<int64_t, int64_t>>
BestLearns(const std::vector<LearnEvent>& learns) {
  std::map<std::pair<int64_t, int64_t>, std::pair<int64_t, int64_t>> best;
  for (const LearnEvent& learn : learns) {
    auto key = std::make_pair(learn.vlan, learn.mac);
    auto it = best.find(key);
    if (it == best.end() || learn.seq > it->second.first) {
      best[key] = {learn.seq, learn.port};
    }
  }
  return best;
}

}  // namespace

EntrySet ComputeDesiredState(const std::map<std::string, PortConfig>& ports,
                             const std::map<std::string, MirrorConfig>& mirrors,
                             const std::vector<AclConfig>& acls,
                             const std::vector<LearnEvent>& learns) {
  EntrySet out;
  std::map<int64_t, std::set<int64_t>> vlan_members;
  for (const auto& [name, port] : ports) {
    if (!port.trunk) {
      out.insert({"InVlanUntagged", {port.port, port.tag}});
      out.insert({"OutVlan", {port.port, port.tag, 0}});
      vlan_members[port.tag].insert(port.port);
    } else {
      for (int64_t vlan : port.trunks) {
        out.insert({"InVlanTagged", {port.port, vlan}});
        out.insert({"OutVlan", {port.port, vlan, 1}});
        vlan_members[vlan].insert(port.port);
      }
    }
  }
  for (const auto& [vlan, members] : vlan_members) {
    out.insert({"FloodVlan", {vlan, vlan + 1}});
    for (int64_t port : members) {
      out.insert({"MulticastGroup", {vlan + 1, port}});
    }
  }
  for (const auto& [name, mirror] : mirrors) {
    out.insert({"PortMirror", {mirror.src_port, mirror.out_port}});
  }
  for (const AclConfig& acl : acls) {
    out.insert({"Acl", {acl.vlan, acl.mac, acl.allow ? 1 : 0}});
  }
  for (const auto& [key, best] : BestLearns(learns)) {
    const auto& [vlan, mac] = key;
    out.insert({"SMac", {vlan, mac, best.second}});
    out.insert({"Dmac", {vlan, mac, best.second}});
  }
  return out;
}

// ---------------------------------------------------------------------------
// FullRecomputeController
// ---------------------------------------------------------------------------

void FullRecomputeController::Recompute() {
  ++recompute_count_;
  EntrySet desired = ComputeDesiredState(ports_, mirrors_, acls_, learns_);
  // Diff against the installed state.
  for (const LogicalEntry& entry : installed_) {
    if (desired.count(entry) == 0) sink_(entry, -1);
  }
  for (const LogicalEntry& entry : desired) {
    if (installed_.count(entry) == 0) sink_(entry, +1);
  }
  installed_ = std::move(desired);
}

void FullRecomputeController::AddPort(PortConfig port) {
  ports_[port.name] = std::move(port);
  Recompute();
}

void FullRecomputeController::RemovePort(const std::string& name) {
  ports_.erase(name);
  Recompute();
}

void FullRecomputeController::AddMirror(MirrorConfig mirror) {
  mirrors_[mirror.name] = std::move(mirror);
  Recompute();
}

void FullRecomputeController::AddAcl(AclConfig acl) {
  acls_.push_back(acl);
  Recompute();
}

void FullRecomputeController::RemoveAcl(int64_t mac, int64_t vlan) {
  acls_.erase(std::remove_if(acls_.begin(), acls_.end(),
                             [&](const AclConfig& acl) {
                               return acl.mac == mac && acl.vlan == vlan;
                             }),
              acls_.end());
  Recompute();
}

void FullRecomputeController::Learn(LearnEvent event) {
  learns_.push_back(event);
  Recompute();
}

// ---------------------------------------------------------------------------
// ImperativeIncrementalController
// ---------------------------------------------------------------------------

void ImperativeIncrementalController::Install(LogicalEntry entry) {
  auto [it, inserted] = installed_.insert(std::move(entry));
  if (inserted) sink_(*it, +1);
}

void ImperativeIncrementalController::Remove(const LogicalEntry& entry) {
  auto it = installed_.find(entry);
  if (it == installed_.end()) return;
  sink_(*it, -1);
  installed_.erase(it);
}

void ImperativeIncrementalController::AddPortVlan(int64_t port, int64_t vlan,
                                                  bool tagged) {
  auto& members = tagged ? vlan_tagged_ports_[vlan] : vlan_untagged_ports_[vlan];
  members.insert(port);
  bool first_member = vlan_untagged_ports_[vlan].size() +
                          vlan_tagged_ports_[vlan].size() ==
                      1;
  if (tagged) {
    Install({"InVlanTagged", {port, vlan}});
    Install({"OutVlan", {port, vlan, 1}});
  } else {
    Install({"OutVlan", {port, vlan, 0}});
  }
  Install({"MulticastGroup", {vlan + 1, port}});
  if (first_member) Install({"FloodVlan", {vlan, vlan + 1}});
}

void ImperativeIncrementalController::RemovePortVlan(int64_t port,
                                                     int64_t vlan,
                                                     bool tagged) {
  auto& members = tagged ? vlan_tagged_ports_[vlan] : vlan_untagged_ports_[vlan];
  members.erase(port);
  if (tagged) {
    Remove({"InVlanTagged", {port, vlan}});
    Remove({"OutVlan", {port, vlan, 1}});
  } else {
    Remove({"OutVlan", {port, vlan, 0}});
  }
  // Careful: the port may carry the vlan through the *other* mode still
  // (e.g. untagged on one row, tagged on another is impossible per port,
  // but two ports sharing a vlan is the common case).
  bool still_member = vlan_untagged_ports_[vlan].count(port) != 0 ||
                      vlan_tagged_ports_[vlan].count(port) != 0;
  if (!still_member) Remove({"MulticastGroup", {vlan + 1, port}});
  if (vlan_untagged_ports_[vlan].empty() && vlan_tagged_ports_[vlan].empty()) {
    Remove({"FloodVlan", {vlan, vlan + 1}});
    vlan_untagged_ports_.erase(vlan);
    vlan_tagged_ports_.erase(vlan);
  }
}

void ImperativeIncrementalController::AddPort(PortConfig port) {
  auto existing = ports_.find(port.name);
  if (existing != ports_.end()) RemovePort(port.name);
  if (!port.trunk) {
    Install({"InVlanUntagged", {port.port, port.tag}});
    AddPortVlan(port.port, port.tag, /*tagged=*/false);
  } else {
    for (int64_t vlan : port.trunks) {
      AddPortVlan(port.port, vlan, /*tagged=*/true);
    }
  }
  ports_[port.name] = std::move(port);
}

void ImperativeIncrementalController::RemovePort(const std::string& name) {
  auto it = ports_.find(name);
  if (it == ports_.end()) return;
  const PortConfig& port = it->second;
  if (!port.trunk) {
    Remove({"InVlanUntagged", {port.port, port.tag}});
    RemovePortVlan(port.port, port.tag, /*tagged=*/false);
  } else {
    for (int64_t vlan : port.trunks) {
      RemovePortVlan(port.port, vlan, /*tagged=*/true);
    }
  }
  ports_.erase(it);
}

void ImperativeIncrementalController::AddMirror(MirrorConfig mirror) {
  // Replacing a named mirror must retract the old entry — unless another
  // mirror still produces it (entries are a set, so they need refcounting
  // by hand; exactly the retraction subtlety §2.2 warns about).
  auto existing = mirrors_.find(mirror.name);
  if (existing != mirrors_.end()) {
    const MirrorConfig& old = existing->second;
    bool shared = false;
    for (const auto& [name, other] : mirrors_) {
      if (name != old.name && other.src_port == old.src_port &&
          other.out_port == old.out_port) {
        shared = true;
      }
    }
    if (!shared) Remove({"PortMirror", {old.src_port, old.out_port}});
  }
  Install({"PortMirror", {mirror.src_port, mirror.out_port}});
  mirrors_[mirror.name] = std::move(mirror);
}

void ImperativeIncrementalController::AddAcl(AclConfig acl) {
  Install({"Acl", {acl.vlan, acl.mac, acl.allow ? 1 : 0}});
}

void ImperativeIncrementalController::RemoveAcl(int64_t mac, int64_t vlan) {
  Remove({"Acl", {vlan, mac, 0}});
  Remove({"Acl", {vlan, mac, 1}});
}

void ImperativeIncrementalController::Learn(LearnEvent event) {
  auto key = std::make_pair(event.vlan, event.mac);
  auto it = best_learn_.find(key);
  if (it != best_learn_.end()) {
    if (event.seq <= it->second.first) return;  // stale
    int64_t old_port = it->second.second;
    if (old_port != event.port) {
      Remove({"SMac", {event.vlan, event.mac, old_port}});
      Remove({"Dmac", {event.vlan, event.mac, old_port}});
    }
  }
  best_learn_[key] = {event.seq, event.port};
  Install({"SMac", {event.vlan, event.mac, event.port}});
  Install({"Dmac", {event.vlan, event.mac, event.port}});
}

}  // namespace nerpa::baseline

namespace nerpa::baseline {
const char* const kImperativeSourcePath = __FILE__;
}
