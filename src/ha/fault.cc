#include "ha/fault.h"

#include "common/clock.h"
#include "common/strings.h"

namespace nerpa::ha {

Status FaultyRuntimeClient::MaybeFail(const char* what) {
  ++stats_.write_calls;
  if (policy_.write_fail_probability <= 0) return Status::Ok();
  if (policy_.max_failures >= 0 &&
      stats_.injected_failures >=
          static_cast<uint64_t>(policy_.max_failures)) {
    return Status::Ok();
  }
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  if (coin(rng_) >= policy_.write_fail_probability) return Status::Ok();
  if (policy_.stall_nanos > 0) {
    // Stall mode: the device is slow, not broken — burn the budget, then
    // let the write through.
    ++stats_.injected_stalls;
    int64_t deadline = MonotonicNanos() + policy_.stall_nanos;
    while (MonotonicNanos() < deadline) {
    }
    return Status::Ok();
  }
  ++stats_.injected_failures;
  return Internal(StrFormat("injected fault: %s failed (failure #%llu)", what,
                            static_cast<unsigned long long>(
                                stats_.injected_failures)));
}

void FaultyRuntimeClient::MaybeDelay() {
  if (policy_.write_delay_nanos <= 0) return;
  ++stats_.delayed_calls;
  int64_t deadline = MonotonicNanos() + policy_.write_delay_nanos;
  while (MonotonicNanos() < deadline) {
    // Busy-wait: delays in tests are sub-millisecond and sleeping would
    // round them up to scheduler granularity.
  }
}

Status FaultyRuntimeClient::Write(const std::vector<p4::Update>& updates) {
  NERPA_RETURN_IF_ERROR(MaybeFail("table write"));
  MaybeDelay();
  return p4::RuntimeClient::Write(updates);
}

Status FaultyRuntimeClient::SetMulticastGroup(uint32_t group,
                                              std::vector<uint64_t> ports) {
  NERPA_RETURN_IF_ERROR(MaybeFail("multicast group write"));
  MaybeDelay();
  return p4::RuntimeClient::SetMulticastGroup(group, std::move(ports));
}

}  // namespace nerpa::ha

