file(REMOVE_RECURSE
  "CMakeFiles/ip_fabric.dir/ip_fabric.cpp.o"
  "CMakeFiles/ip_fabric.dir/ip_fabric.cpp.o.d"
  "ip_fabric"
  "ip_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
