// Read-through response cache for the northbound gateway.
//
// Cached GET responses are keyed by the raw request target and validated
// by per-table generation counters: the gateway's monitor pump calls
// Bump(table) whenever the OVSDB update stream reports a change, so the
// next Lookup for any entry reading that table misses and re-fetches.
// This keeps coherence cheap — no per-row tracking, no TTLs — at the cost
// of over-invalidation under writes, which is exactly the trade the paper's
// read-mostly northbound workload wants.
//
// Thread-safety: every method takes the internal mutex; the monitor pump
// thread bumps generations while event-loop workers look up and insert.
#ifndef NERPA_GATEWAY_CACHE_H_
#define NERPA_GATEWAY_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace nerpa::gateway {

class ReadCache {
 public:
  /// Default bound on resident entries (LRU-evicted beyond this).
  static constexpr size_t kDefaultMaxEntries = 4096;

  explicit ReadCache(size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries) {}

  /// Current generation for `table` (starts at 0, monotonically increases).
  uint64_t Generation(const std::string& table) const;

  /// Invalidates every cached response that reads `table`.
  void Bump(const std::string& table);

  /// Returns the cached body for `key` if present and still valid (its
  /// captured generation matches the table's current one).  Counts a hit
  /// or a miss either way.
  std::optional<std::string> Lookup(const std::string& key);

  /// Brownout path: returns the cached body for `key` even when its
  /// generation is stale (`*fresh` reports which), or nullopt when the
  /// key was never cached.  Stale serves count in stale_hits(), not
  /// hits()/misses() — brownout reads must not skew the coherence stats.
  std::optional<std::string> LookupStale(const std::string& key, bool* fresh);

  /// Caches `body` for `key`.  `generation` must be the value of
  /// Generation(table) captured BEFORE the backend read, so an update that
  /// races the fetch invalidates the entry rather than being masked.
  void Insert(const std::string& key, const std::string& table,
              uint64_t generation, std::string body);

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  uint64_t stale_hits() const;
  size_t size() const;

 private:
  struct Entry {
    std::string table;
    uint64_t generation = 0;
    std::string body;
    std::list<std::string>::iterator lru_it;
  };

  void Touch(Entry& entry, const std::string& key);

  mutable std::mutex mu_;
  size_t max_entries_;
  std::map<std::string, uint64_t> generations_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t stale_hits_ = 0;
};

}  // namespace nerpa::gateway

#endif  // NERPA_GATEWAY_CACHE_H_
