// Unified retry vocabulary for every layer that re-attempts failed work:
// controller data-plane writes, OVSDB session heals, HA resync, and the
// gateway's monitor pump all used to carry their own hand-rolled backoff
// loops.  Two problems with that: the loops were unjittered (synchronized
// failures retry in lockstep — a thundering herd against whatever just
// came back), and each layer retried independently of the others, so one
// downstream outage amplified into a multiplicative retry storm.
//
// Two pieces replace those loops:
//
//  * Backoff — one call site's jittered exponential delay sequence.
//    Deterministic for a given seed (chaos soaks stay reproducible);
//    jitter spreads synchronized retriers across ±jitter_frac of the
//    nominal delay.
//
//  * RetryBudget — a per-subsystem token bucket refilled by *successes*:
//    each success deposits `ratio` tokens, each retry withdraws one.
//    While the subsystem is mostly healthy, retries are free; when the
//    downstream is hard-down, the budget drains and further retries are
//    refused (fail fast, surface the error, let anti-entropy or the
//    caller's own recovery own the repair).  This caps the retry
//    amplification factor at ~ratio no matter how many callers pile on.
//    Thread-safe — one budget is shared by all threads of a subsystem.
#ifndef NERPA_COMMON_RETRY_H_
#define NERPA_COMMON_RETRY_H_

#include <cstdint>
#include <mutex>

namespace nerpa {

/// Jittered exponential backoff schedule (one retry loop's policy).
struct BackoffPolicy {
  int64_t initial_nanos = 1'000'000;   // delay before the 2nd attempt
  double multiplier = 2.0;             // growth per attempt
  int64_t max_nanos = 100'000'000;     // delay cap
  double jitter_frac = 0.2;            // uniform in [1-j, 1+j] of nominal
};

/// The delay iterator for one retry loop.  Not thread-safe (each loop
/// owns one); deterministic for a given (policy, seed).
class Backoff {
 public:
  Backoff(const BackoffPolicy& policy, uint64_t seed);

  /// The next delay in the schedule: nominal exponential value (advanced
  /// after sampling) scaled by the jitter draw.  Never negative.
  int64_t NextDelayNanos();

  /// Restarts the schedule from initial_nanos (e.g. after a success).
  void Reset();

 private:
  BackoffPolicy policy_;
  int64_t nominal_nanos_;
  uint64_t rng_state_;
};

/// Applies one jitter draw from `rng_state` (xorshift64*, advanced in
/// place) to `nominal_nanos`: uniform in [1-frac, 1+frac].  Exposed for
/// call sites that need a jittered interval without a full Backoff
/// schedule (e.g. circuit-breaker probe cooldowns).
int64_t JitterNanos(int64_t nominal_nanos, double frac, uint64_t* rng_state);

/// Token-style retry budget shared by one subsystem.
class RetryBudget {
 public:
  /// Starts full at `max_tokens`.  Each success deposits `ratio` tokens
  /// (capped at max); each permitted retry withdraws 1.  ratio 0.1 means
  /// sustained retries are capped at ~10% of the success rate.
  RetryBudget(double max_tokens, double ratio);

  /// Deposits for one successful operation.
  void RecordSuccess();

  /// Withdraws one token if available; false = budget exhausted, the
  /// caller must not retry (counted in exhausted()).
  bool TryWithdraw();

  double tokens() const;
  uint64_t exhausted() const;

 private:
  mutable std::mutex mu_;
  const double max_tokens_;
  const double ratio_;
  double tokens_;
  uint64_t exhausted_ = 0;
};

}  // namespace nerpa

#endif  // NERPA_COMMON_RETRY_H_
