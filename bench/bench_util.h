// Shared helpers for the experiment harnesses: aligned table printing,
// simple statistics, common command-line flags, and the canonical
// machine-readable result emitter.  Each bench binary reproduces one
// table/figure of the paper (see DESIGN.md's experiment index), prints the
// paper's reference values next to the measured ones, and writes a
// BENCH_<name>.json results file for CI and cross-run comparison.
#ifndef NERPA_BENCH_BENCH_UTIL_H_
#define NERPA_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "common/strings.h"

namespace nerpa::bench {

/// Flags every bench accepts:
///   --scale=F   multiply workload sizes by F (0 < F; default 1.0), so CI
///               smoke runs (--scale=0.1) and stress runs (--scale=10)
///               share one binary
///   --seed=N    seed for any randomized workload (default 42)
///   --out=DIR   directory for the BENCH_<name>.json results file
///               (default "." — run benches from the repo root)
/// Unknown arguments are left alone (benches with their own positional
/// modes, e.g. child-process variants, parse those first).
struct BenchArgs {
  double scale = 1.0;
  uint64_t seed = 42;
  std::string out_dir = ".";

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--scale=", 8) == 0) {
        double scale = std::atof(arg + 8);
        if (scale > 0) args.scale = scale;
      } else if (std::strncmp(arg, "--seed=", 7) == 0) {
        args.seed = static_cast<uint64_t>(std::strtoull(arg + 7, nullptr, 10));
      } else if (std::strncmp(arg, "--out=", 6) == 0) {
        args.out_dir = arg + 6;
      }
    }
    return args;
  }

  /// `n` scaled by --scale, floored at 1 (workload sizes stay meaningful).
  int Scaled(int n) const {
    double scaled = static_cast<double>(n) * scale;
    return scaled < 1 ? 1 : static_cast<int>(scaled);
  }

  /// Flags to forward to a child-process variant of the same binary.
  std::string Forward() const {
    return StrFormat(" --scale=%g --seed=%llu", scale,
                     static_cast<unsigned long long>(seed));
  }
};

/// Accumulates one bench's results and writes the canonical
/// BENCH_<name>.json:
///   {"bench": <name>, "scale": F, "seed": N,
///    "params": {...workload parameters...},
///    "metrics": {...measured values...}}
/// Params record what was run (so a --scale=0.1 smoke file is never
/// mistaken for a full run); metrics record what was measured.  Values are
/// plain JSON, so nested objects (per-size curves, before/after pairs) are
/// fine.
class JsonEmitter {
 public:
  JsonEmitter(std::string name, const BenchArgs& args)
      : name_(std::move(name)), scale_(args.scale), seed_(args.seed),
        out_dir_(args.out_dir) {}

  void Param(const std::string& key, Json value) {
    params_[key] = std::move(value);
  }
  void Metric(const std::string& key, Json value) {
    metrics_[key] = std::move(value);
  }

  /// Writes BENCH_<name>.json into --out (default cwd).  Returns false and
  /// warns on I/O failure — a bench's measurements still count without the
  /// file.
  bool Write() const {
    Json::Object root;
    root["bench"] = name_;
    root["scale"] = scale_;
    root["seed"] = static_cast<int64_t>(seed_);
    root["params"] = Json(params_);
    root["metrics"] = Json(metrics_);
    std::string path = out_dir_ + "/BENCH_" + name_ + ".json";
    std::string text = Json(std::move(root)).Dump(2) + "\n";
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr ||
        std::fwrite(text.data(), 1, text.size(), file) != text.size()) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      if (file != nullptr) std::fclose(file);
      return false;
    }
    std::fclose(file);
    std::printf("\nresults: %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  double scale_;
  uint64_t seed_;
  std::string out_dir_;
  Json::Object params_;
  Json::Object metrics_;
};

/// Prints a header box for an experiment.
inline void Banner(const std::string& id, const std::string& title) {
  std::string line(72, '=');
  std::printf("%s\n%s — %s\n%s\n", line.c_str(), id.c_str(), title.c_str(),
              line.c_str());
}

/// A fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%-*s", c == 0 ? "  " : "  ",
                    static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::vector<std::string> rule;
    for (size_t w : widths) rule.push_back(std::string(w, '-'));
    print_row(rule);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Ms(double seconds) {
  return StrFormat("%.3f ms", seconds * 1e3);
}

inline std::string Us(double seconds) {
  return StrFormat("%.1f us", seconds * 1e6);
}

inline double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[index];
}

}  // namespace nerpa::bench

#endif  // NERPA_BENCH_BENCH_UTIL_H_
