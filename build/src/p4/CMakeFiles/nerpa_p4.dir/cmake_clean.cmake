file(REMOVE_RECURSE
  "CMakeFiles/nerpa_p4.dir/entry.cc.o"
  "CMakeFiles/nerpa_p4.dir/entry.cc.o.d"
  "CMakeFiles/nerpa_p4.dir/interpreter.cc.o"
  "CMakeFiles/nerpa_p4.dir/interpreter.cc.o.d"
  "CMakeFiles/nerpa_p4.dir/ir.cc.o"
  "CMakeFiles/nerpa_p4.dir/ir.cc.o.d"
  "CMakeFiles/nerpa_p4.dir/runtime.cc.o"
  "CMakeFiles/nerpa_p4.dir/runtime.cc.o.d"
  "CMakeFiles/nerpa_p4.dir/text.cc.o"
  "CMakeFiles/nerpa_p4.dir/text.cc.o.d"
  "libnerpa_p4.a"
  "libnerpa_p4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nerpa_p4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
