// Chaos soak: seeded fault schedules hammer all three planes at once —
// device write failures (quarantined by circuit breakers), OVSDB transport
// drops (healed by monitor_since session resumption), and filesystem
// corruption (tolerated by CRC framing + snapshot fallback) — and after
// quiescence the surviving state must byte-match a from-scratch
// recomputation.  Every decision draws from one seeded schedule, so a
// failing run replays exactly from its seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "common/strings.h"
#include "ha/durable.h"
#include "net/packet.h"
#include "ovsdb/client.h"
#include "ovsdb/server.h"
#include "snvs/ha_pair.h"
#include "snvs/snvs.h"

namespace nerpa {
namespace {

struct FaultTally {
  uint64_t fs = 0;         // durability seam (ChaosIo)
  uint64_t device = 0;     // data-plane seam (FaultyRuntimeClient)
  uint64_t transport = 0;  // management-plane seam (socket kills)
  uint64_t total() const { return fs + device + transport; }
};

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/nerpa_chaos_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

constexpr const char* kTables[] = {"InVlanUntagged", "InVlanTagged",
                                   "PortMirror",     "Acl",
                                   "SMac",           "Dmac",
                                   "FloodVlan",      "OutVlan"};

/// Canonical dump of one device's entire data-plane state for byte-exact
/// convergence checks (same shape as the test_ha_restart helper).
std::string DeviceState(const p4::Switch& sw) {
  std::string out;
  for (const char* table : kTables) {
    std::vector<std::string> lines;
    for (const p4::TableEntry* entry : sw.GetTable(table)->Entries()) {
      lines.push_back(entry->ToString());
    }
    std::sort(lines.begin(), lines.end());
    for (const std::string& line : lines) out += line + "\n";
  }
  for (const auto& [group, ports] : sw.multicast_groups()) {
    out += "group " + std::to_string(group);
    for (uint64_t port : ports) out += " " + std::to_string(port);
    out += "\n";
  }
  return out;
}

// --- snvs half: device faults + filesystem corruption + crashes --------

/// Drives a durable snvs stack through a seeded storm of device write
/// failures, torn/failed WAL appends, corrupted snapshot writes, and
/// process crashes; converges it; and checks the survivors byte-match a
/// from-scratch rebuild off the same durable directory.
void SnvsSoak(uint64_t seed, FaultTally& tally) {
  chaos::ChaosSchedule schedule(seed);
  std::string dir = FreshDir("snvs_" + std::to_string(seed));

  chaos::ChaosIoPolicy io_policy;
  io_policy.write_corrupt_probability = 0.08;  // snapshot bit rot
  io_policy.torn_append_probability = 0.02;    // crash mid-append
  io_policy.append_fail_probability = 0.03;    // transient append error
  chaos::ChaosIo io(&schedule, io_policy);

  snvs::SnvsOptions options;
  options.ha_dir = dir;
  options.io = &io;
  options.devices = 2;
  options.fault.write_fail_probability = 0.15;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_nanos = 1000;
  options.retry.max_backoff_nanos = 4000;
  options.breaker.enabled = true;
  options.breaker.strike_threshold = 2;
  options.breaker.cooldown_nanos = 0;  // probe on the next anti-entropy run

  // Device fault counters die with each stack generation; collect them
  // before every teardown.
  auto harvest = [&](snvs::SnvsStack& stack) {
    for (size_t i = 0; i < stack.device_count(); ++i) {
      if (ha::FaultyRuntimeClient* faulty = stack.faulty(i)) {
        tally.device += faulty->fault_stats().injected_failures +
                        faulty->fault_stats().injected_stalls;
      }
    }
  };
  auto rebuild = [&]() -> std::unique_ptr<snvs::SnvsStack> {
    options.fault.seed = schedule.Fork();  // decorrelate each generation
    auto stack = snvs::BuildSnvsStack(options);
    EXPECT_TRUE(stack.ok()) << "seed " << seed << ": "
                            << stack.status().ToString();
    return stack.ok() ? std::move(stack).value() : nullptr;
  };

  auto stack = rebuild();
  ASSERT_NE(stack, nullptr);

  // The management-plane workload.  Names and port numbers are never
  // reused, so an operation lost to a crash never causes a later
  // constraint collision; Mirror src_port collisions are legal constraint
  // rejections and simply skipped.
  std::vector<std::string> ports;
  int next_port = 1, next_acl = 0, next_mirror = 0;
  constexpr int kOps = 140;
  for (int op = 0; op < kOps; ++op) {
    ASSERT_NE(stack, nullptr);
    uint64_t fs_before = io.injected_faults();
    uint64_t roll = schedule.Pick(100);
    if (roll < 55 || ports.empty()) {
      std::string name = StrFormat("p%d", next_port);
      if (schedule.Flip(0.25)) {
        (void)stack->AddPort(name, next_port, "trunk", 0, {10, 20});
      } else {
        int64_t vlan = 10 + 10 * static_cast<int64_t>(schedule.Pick(4));
        (void)stack->AddPort(name, next_port, "access", vlan);
      }
      ports.push_back(name);
      ++next_port;
    } else if (roll < 75) {
      size_t victim = schedule.Pick(ports.size());
      (void)stack->DeletePort(ports[victim]);
      ports.erase(ports.begin() + static_cast<ptrdiff_t>(victim));
    } else if (roll < 90) {
      (void)stack->AddAclRule(0x1000 + next_acl++,
                              10 + 10 * static_cast<int64_t>(schedule.Pick(4)),
                              schedule.Flip(0.5));
    } else {
      (void)stack->AddMirror(StrFormat("m%d", next_mirror++),
                             1 + static_cast<int64_t>(schedule.Pick(16)),
                             1 + static_cast<int64_t>(schedule.Pick(16)));
    }
    if (io.injected_faults() == fs_before && schedule.Flip(0.12)) {
      (void)stack->Checkpoint();  // may draw a corrupted snapshot write
    }
    // A WAL/snapshot fault means the live database may be ahead of the
    // durable state: treat it as a crash immediately, so recovery (torn
    // tail truncation / snapshot fallback) is exercised while disk and
    // bookkeeping stay consistent.  Occasionally crash for no reason at
    // all.
    if (io.injected_faults() != fs_before || schedule.Flip(0.06)) {
      harvest(*stack);
      stack.reset();
      stack = rebuild();
      ASSERT_NE(stack, nullptr);
    }
  }

  // Quiescence: heal every device, then one anti-entropy round must
  // rejoin whatever is quarantined.
  for (size_t i = 0; i < stack->device_count(); ++i) {
    if (ha::FaultyRuntimeClient* faulty = stack->faulty(i)) {
      ha::FaultPolicy healthy = faulty->policy();
      healthy.write_fail_probability = 0;
      faulty->set_policy(healthy);
    }
  }
  ASSERT_TRUE(stack->controller().RunAntiEntropy().ok());
  Controller::Stats stats = stack->controller().stats();
  for (const auto& [device, state] : stats.breaker_states) {
    EXPECT_EQ(state, "closed")
        << "seed " << seed << ": " << device
        << " failed to rejoin within one anti-entropy round";
    EXPECT_EQ(stats.outbox_sizes.at(device), 0u);
  }

  // Capture the survivors, tear the stack down cleanly, and recompute the
  // whole system from scratch off the same durable directory with no
  // chaos anywhere.  Management plane and every interpreted P4 table must
  // come back byte-identical.
  Json db_state = ha::DurableStore::SnapshotJson(stack->db(), 0);
  std::vector<std::string> device_states;
  for (size_t i = 0; i < stack->device_count(); ++i) {
    device_states.push_back(DeviceState(stack->device(i)));
  }
  harvest(*stack);
  tally.fs += io.injected_faults();
  stack.reset();

  snvs::SnvsOptions clean;
  clean.ha_dir = dir;
  clean.devices = 2;
  auto reference = snvs::BuildSnvsStack(clean);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  EXPECT_TRUE((*reference)->store()->recovered());
  EXPECT_EQ(ha::DurableStore::SnapshotJson((*reference)->db(), 0), db_state)
      << "seed " << seed << ": management plane diverged";
  for (size_t i = 0; i < device_states.size(); ++i) {
    EXPECT_EQ(DeviceState((*reference)->device(i)), device_states[i])
        << "seed " << seed << ": device " << i << " diverged";
  }
}

// --- transport half: session kills under a live update stream ----------

/// A row-level replica maintained purely from one monitor's update
/// stream.  Gap-free delivery across heals ⇒ the replica equals the
/// authoritative database at quiescence.
using Replica = std::map<std::string, std::map<std::string, Json>>;

void ApplyUpdates(Replica& replica, const Json& updates) {
  if (!updates.is_object()) return;
  for (const auto& [table, rows] : updates.as_object()) {
    for (const auto& [uuid, delta] : rows.as_object()) {
      const Json* new_row = delta.Find("new");
      if (new_row != nullptr) {
        replica[table][uuid] = *new_row;
      } else {
        replica[table].erase(uuid);
      }
    }
  }
}

std::string ReplicaDump(const Replica& replica) {
  std::string out;
  for (const auto& [table, rows] : replica) {
    if (rows.empty()) continue;
    for (const auto& [uuid, row] : rows) {
      out += table + "/" + uuid + "=" + row.Dump() + "\n";
    }
  }
  return out;
}

void TransportSoak(uint64_t seed, FaultTally& tally) {
  // Decorrelated from the snvs half but still a pure function of `seed`.
  chaos::ChaosSchedule schedule(seed ^ 0x9e3779b97f4a7c15ull);
  auto server = std::make_unique<ovsdb::OvsdbServer>(
      std::make_unique<ovsdb::Database>(snvs::SnvsSchema()));
  ASSERT_TRUE(server->Start().ok());

  ovsdb::OvsdbClient watcher;
  ovsdb::OvsdbClient::HealPolicy heal;
  heal.enabled = true;
  heal.backoff_ms = 1;
  watcher.set_heal_policy(heal);
  ASSERT_TRUE(watcher.Connect("127.0.0.1", server->port()).ok());
  Replica replica;
  ASSERT_TRUE(watcher
                  .Monitor(Json("replica"), {},
                           [&](const Json&, const Json& updates) {
                             ApplyUpdates(replica, updates);
                           })
                  .ok());

  ovsdb::OvsdbClient writer;  // its own (never-faulted) session
  ASSERT_TRUE(writer.Connect("127.0.0.1", server->port()).ok());
  std::vector<std::string> ports;
  int next_port = 1000;  // disjoint from anything else
  constexpr int kTxns = 60;
  for (int t = 0; t < kTxns; ++t) {
    if (schedule.Pick(100) < 70 || ports.empty()) {
      std::string name = StrFormat("w%d", next_port);
      auto result = writer.Transact(
          Json::Parse(StrFormat(
                          R"([{"op": "insert", "table": "Port",
                               "row": {"name": "%s", "port": %d,
                                       "vlan_mode": "access", "tag": 10}}])",
                          name.c_str(), next_port))
              .value());
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ports.push_back(name);
      ++next_port;
    } else {
      size_t victim = schedule.Pick(ports.size());
      auto result = writer.Transact(
          Json::Parse(StrFormat(
                          R"([{"op": "delete", "table": "Port",
                               "where": [["name", "==", "%s"]]}])",
                          ports[victim].c_str()))
              .value());
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ports.erase(ports.begin() + static_cast<ptrdiff_t>(victim));
    }
    // Kill the watcher's transport mid-stream; sometimes pump it (healing
    // lazily), sometimes let drops pile up across several transactions.
    if (schedule.Flip(0.35)) {
      watcher.InjectTransportFault();
      ++tally.transport;
    }
    if (schedule.Flip(0.5)) {
      auto polled = watcher.Poll();
      ASSERT_TRUE(polled.ok()) << polled.status().ToString();
    }
  }

  // Quiescence: drain everything (healing one last time if the final kill
  // landed after the final poll).
  for (int quiet = 0; quiet < 2;) {
    auto polled = watcher.Poll();
    ASSERT_TRUE(polled.ok()) << polled.status().ToString();
    quiet = *polled == 0 ? quiet + 1 : 0;
  }
  EXPECT_GT(watcher.session_stats().reconnects, 0u);
  EXPECT_EQ(watcher.session_stats().full_redumps, 0u)
      << "gap outgrew the server history; raise kHistoryLimit in the test";

  // Authoritative contents via a fresh session's initial dump.
  ovsdb::OvsdbClient auditor;
  ASSERT_TRUE(auditor.Connect("127.0.0.1", server->port()).ok());
  auto dump = auditor.Monitor(Json("audit"), {},
                              [](const Json&, const Json&) {});
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  Replica authoritative;
  ApplyUpdates(authoritative, *dump);
  EXPECT_EQ(ReplicaDump(replica), ReplicaDump(authoritative))
      << "seed " << seed << ": replica diverged from the database";

  watcher.Disconnect();
  writer.Disconnect();
  auditor.Disconnect();
  server->Stop();
}

// --- replication half: lease pathologies over a hot-standby pair -------

/// Drives a durable dual-controller deployment through a seeded storm of
/// lease losses, clock skews, zombie leaders, and device write faults;
/// converges it (heal + final leader resync + checkpoint); and checks the
/// survivors byte-match a clean rebuild off the same durable directory —
/// including digest-learned MACs, which only the engine-checkpoint handoff
/// can carry.
void FailoverSoak(uint64_t seed, FaultTally& tally,
                  chaos::LeaseFaultTally& lease_tally) {
  chaos::ChaosSchedule schedule(seed ^ 0xc2b2ae3d27d4eb4full);
  std::string dir = FreshDir("failover_" + std::to_string(seed));

  int64_t now = 1;
  constexpr int64_t kTtl = 1000;

  snvs::SnvsHaOptions options;
  options.devices = 2;
  options.ha_dir = dir;
  options.lease_ttl_nanos = kTtl;
  options.clock = [&now] { return now; };
  options.fault.write_fail_probability = 0.10;
  options.fault.seed = schedule.Fork();
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_nanos = 1000;
  options.retry.max_backoff_nanos = 4000;

  auto built = snvs::BuildSnvsHaPair(options);
  ASSERT_TRUE(built.ok()) << "seed " << seed << ": "
                          << built.status().ToString();
  snvs::SnvsHaPair& pair = **built;
  ASSERT_EQ(pair.Tick(), 0) << "replica 0 must win the first election";

  chaos::LeaseFaultPolicy lease_policy;
  lease_policy.lease_loss_probability = 0.10;
  lease_policy.clock_skew_probability = 0.08;
  lease_policy.zombie_probability = 0.08;

  std::vector<std::string> ports;
  int next_port = 1, next_acl = 0, next_mirror = 0, next_host = 1;
  constexpr int kOps = 120;
  for (int op = 0; op < kOps; ++op) {
    uint64_t roll = schedule.Pick(100);
    if (roll < 50 || ports.empty()) {
      std::string name = StrFormat("hp%d", next_port);
      if (schedule.Flip(0.25)) {
        (void)pair.AddPort(name, next_port, "trunk", 0, {10, 20});
      } else {
        int64_t vlan = 10 + 10 * static_cast<int64_t>(schedule.Pick(4));
        (void)pair.AddPort(name, next_port, "access", vlan);
      }
      ports.push_back(name);
      ++next_port;
    } else if (roll < 65) {
      size_t victim = schedule.Pick(ports.size());
      (void)pair.DeletePort(ports[victim]);
      ports.erase(ports.begin() + static_cast<ptrdiff_t>(victim));
    } else if (roll < 80) {
      (void)pair.AddAclRule(0x2000 + next_acl++,
                            10 + 10 * static_cast<int64_t>(schedule.Pick(4)),
                            schedule.Flip(0.5));
    } else if (roll < 90) {
      (void)pair.AddMirror(StrFormat("hm%d", next_mirror++),
                           1 + static_cast<int64_t>(schedule.Pick(16)),
                           1 + static_cast<int64_t>(schedule.Pick(16)));
    } else {
      // MAC learning traffic: digest-only soft state, carried across
      // failovers purely by the checkpoint handoff.
      uint8_t h = static_cast<uint8_t>(next_host++ % 200 + 1);
      (void)pair.InjectPacket(
          schedule.Pick(2), 1 + schedule.Pick(16),
          net::MakeEthernetFrame(net::Mac(0, 0, 0, 0, 0x20, h),
                                 net::Mac(0, 0, 0, 0, 0x20,
                                          static_cast<uint8_t>(h + 1)),
                                 0x0800, {0xCA, 0xFE}));
    }
    if (schedule.Flip(0.15)) {
      (void)pair.Checkpoint();
      (void)pair.SyncStandby();
    }

    // The replication seam.
    chaos::LeaseFault fault = chaos::DrawLeaseFault(schedule, lease_policy);
    lease_tally.Count(fault);
    switch (fault) {
      case chaos::LeaseFault::kNone:
        now += kTtl / 4;
        pair.Tick();  // routine renewal
        break;
      case chaos::LeaseFault::kLeaseLoss:
        // Leader silently stops renewing; the TTL runs out and the next
        // tick fails its renewal (demote) while the standby acquires.
        now += 2 * kTtl;
        pair.Tick();
        break;
      case chaos::LeaseFault::kClockSkew:
        // The shared clock jumps mid-lease; both replicas see expiry at
        // once and race to (re)acquire through the CAS.
        now += kTtl + static_cast<int64_t>(schedule.Pick(3 * kTtl));
        pair.Tick();
        break;
      case chaos::LeaseFault::kZombieLeader: {
        int zombie = pair.leader();
        if (zombie < 0) {
          now += kTtl / 4;
          pair.Tick();
          break;
        }
        // The standby promotes while the old leader never learns it lost
        // the lease; the next commit makes the zombie write with a stale
        // epoch — every switch must fence it out, and it self-demotes.
        now += 2 * kTtl;
        pair.coordinator(static_cast<size_t>(1 - zombie)).Tick();
        uint64_t stale_before = pair.device(0).stale_writes() +
                                pair.device(1).stale_writes();
        std::string name = StrFormat("hp%d", next_port);
        (void)pair.AddPort(name, next_port, "access", 10);
        ports.push_back(name);
        ++next_port;
        EXPECT_GT(pair.device(0).stale_writes() +
                      pair.device(1).stale_writes(),
                  stale_before)
            << "seed " << seed << ": zombie write was not fenced";
        EXPECT_EQ(pair.controller(static_cast<size_t>(zombie)).role(),
                  Role::kFollower)
            << "seed " << seed << ": zombie did not self-demote";
        pair.Tick();  // settle
        break;
      }
    }
  }

  // Quiescence: heal the data plane, make sure someone leads, and let the
  // leader re-establish ground truth on every device (promotion-style
  // resync repairs anything retry exhaustion dropped mid-storm).
  for (size_t r = 0; r < snvs::SnvsHaPair::kReplicas; ++r) {
    for (size_t d = 0; d < pair.device_count(); ++d) {
      if (ha::FaultyRuntimeClient* faulty = pair.faulty(r, d)) {
        tally.device += faulty->fault_stats().injected_failures +
                        faulty->fault_stats().injected_stalls;
        ha::FaultPolicy healthy = faulty->policy();
        healthy.write_fail_probability = 0;
        faulty->set_policy(healthy);
      }
    }
  }
  int leader = pair.Tick();
  if (leader < 0) {
    now += 2 * kTtl;
    leader = pair.Tick();
  }
  ASSERT_GE(leader, 0) << "seed " << seed << ": no leader at quiescence";
  for (size_t d = 0; d < pair.device_count(); ++d) {
    ASSERT_TRUE(pair.controller(static_cast<size_t>(leader))
                    .ResyncDevice(StrFormat("sw%zu", d))
                    .ok());
  }
  // Converged fixpoint: a second resync applies zero writes.
  Controller::Stats before =
      pair.controller(static_cast<size_t>(leader)).stats();
  for (size_t d = 0; d < pair.device_count(); ++d) {
    ASSERT_TRUE(pair.controller(static_cast<size_t>(leader))
                    .ResyncDevice(StrFormat("sw%zu", d))
                    .ok());
  }
  Controller::Stats after =
      pair.controller(static_cast<size_t>(leader)).stats();
  EXPECT_EQ(after.resync_inserted, before.resync_inserted);
  EXPECT_EQ(after.resync_deleted, before.resync_deleted);
  EXPECT_EQ(after.resync_modified, before.resync_modified);

  // Persist everything (engine sidecar carries the learned MACs), capture
  // the survivors, and rebuild a clean pair off the same directory: the
  // management plane and every switch must come back byte-identical.
  ASSERT_TRUE(pair.Checkpoint().ok());
  uint64_t final_epoch =
      static_cast<uint64_t>(pair.lease(static_cast<size_t>(leader)).epoch());
  EXPECT_GE(final_epoch, 1u + lease_tally.total())
      << "every lease fault should have bumped the epoch";
  Json db_state = ha::DurableStore::SnapshotJson(pair.db(), 0);
  std::vector<std::string> device_states;
  for (size_t d = 0; d < pair.device_count(); ++d) {
    device_states.push_back(DeviceState(pair.device(d)));
  }
  built->reset();

  snvs::SnvsHaOptions clean;
  clean.devices = 2;
  clean.ha_dir = dir;
  clean.lease_ttl_nanos = kTtl;
  clean.clock = [&now] { return now; };
  auto reference = snvs::BuildSnvsHaPair(clean);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  // Management plane first — before any Tick, whose lease renewal would
  // legitimately rewrite the Leader_Lease row.
  EXPECT_EQ(ha::DurableStore::SnapshotJson((*reference)->db(), 0), db_state)
      << "seed " << seed << ": management plane diverged";
  ASSERT_GE((*reference)->Tick(), 0);  // elect: promotion installs devices
  for (size_t d = 0; d < device_states.size(); ++d) {
    EXPECT_EQ(DeviceState((*reference)->device(d)), device_states[d])
        << "seed " << seed << ": device " << d << " diverged";
  }
}

// The three fixed seeds the CI chaos-soak job pins (scripts/ci.sh).  Each
// seed must inject at least 50 faults spanning all four seams (device,
// transport, durability, replication) and still converge byte-identically.
// The nightly long-soak job extends the matrix through
// NERPA_SOAK_EXTRA_SEEDS, a comma-separated list appended to the pinned
// three — same storms, more dice rolls.
constexpr uint64_t kSoakSeeds[] = {11, 23, 42};

std::vector<uint64_t> SoakSeeds() {
  std::vector<uint64_t> seeds(std::begin(kSoakSeeds), std::end(kSoakSeeds));
  if (const char* extra = std::getenv("NERPA_SOAK_EXTRA_SEEDS")) {
    for (const std::string& token : Split(extra, ',')) {
      if (!token.empty()) {
        seeds.push_back(std::strtoull(token.c_str(), nullptr, 10));
      }
    }
  }
  return seeds;
}

TEST(ChaosSoak, SeededFaultStormsConvergeAcrossAllThreePlanes) {
  for (uint64_t seed : SoakSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultTally tally;
    SnvsSoak(seed, tally);
    TransportSoak(seed, tally);
    EXPECT_GT(tally.fs, 0u) << "no filesystem faults fired";
    EXPECT_GT(tally.device, 0u) << "no device faults fired";
    EXPECT_GT(tally.transport, 0u) << "no transport faults fired";
    EXPECT_GE(tally.total(), 50u) << "fault storm too weak to mean anything";
  }
}

TEST(ChaosSoak, SeededLeaseStormsConvergeWithFencedFailovers) {
  for (uint64_t seed : SoakSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultTally tally;
    chaos::LeaseFaultTally lease_tally;
    FailoverSoak(seed, tally, lease_tally);
    EXPECT_GT(tally.device, 0u) << "no device faults fired";
    EXPECT_GT(lease_tally.lease_loss, 0u) << "no lease losses fired";
    EXPECT_GT(lease_tally.zombie, 0u) << "no zombie leaders fired";
    EXPECT_GE(lease_tally.total() + tally.device, 50u)
        << "replication fault storm too weak to mean anything";
  }
}

// --- overload half: stall faults against a bounded commit dispatch -----
//
// Stall-mode device faults (slow, not broken) against a commit deadline
// small enough that a stalled write blows the dispatch budget.  Expired
// dispatches must *park* their remaining ops in the per-device outbox —
// never drop them, never apply them twice — and anti-entropy must drain
// every parked op once the devices heal.  Runs under TSan in CI: the
// deadline parks race worker-pool dispatch against the stats lock.
TEST(ChaosSoak, CommitDeadlineParksOpsThatAntiEntropyDrains) {
  for (uint64_t seed : SoakSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    chaos::ChaosSchedule schedule(seed ^ 0xa0761d6478bd642full);

    snvs::SnvsOptions options;
    options.devices = 2;
    options.fault.write_fail_probability = 0.45;
    options.fault.stall_nanos = 150'000;  // slow device, not a broken one
    options.fault.seed = schedule.Fork();
    options.retry.max_attempts = 1;  // stalls succeed; retries are moot
    options.commit_deadline_nanos = 100'000;  // one stall eats the budget
    // Breakers on so a write that *fails* (e.g. a delete racing an
    // earlier parked insert) parks instead of failing the delta — but
    // with a trip point the storm never reaches, so every parked op
    // drains through the closed-breaker outbox-repair arm.
    options.breaker.enabled = true;
    options.breaker.strike_threshold = 1000;
    auto built = snvs::BuildSnvsStack(options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    snvs::SnvsStack& stack = **built;

    // Names/ports never reused, so every surviving op is distinguishable
    // and a double-apply would surface as a duplicate entry at resync.
    // Op statuses are deliberately ignored: a sub-threshold write failure
    // parks the delta's remaining ops *and* surfaces the error (sticky in
    // last_error()), so mid-storm statuses tell us nothing — the
    // resync-fixpoint check below is the real drop/double-apply oracle.
    std::vector<std::string> ports;
    int next_port = 1, next_acl = 0;
    constexpr int kOps = 80;
    for (int op = 0; op < kOps; ++op) {
      uint64_t roll = schedule.Pick(100);
      if (roll < 60 || ports.empty()) {
        std::string name = StrFormat("dp%d", next_port);
        int64_t vlan = 10 + 10 * static_cast<int64_t>(schedule.Pick(4));
        (void)stack.AddPort(name, next_port, "access", vlan);
        ports.push_back(name);
        ++next_port;
      } else if (roll < 80) {
        size_t victim = schedule.Pick(ports.size());
        (void)stack.DeletePort(ports[victim]);
        ports.erase(ports.begin() + static_cast<ptrdiff_t>(victim));
      } else {
        (void)stack.AddAclRule(0x3000 + next_acl++,
                               10 + 10 * static_cast<int64_t>(schedule.Pick(4)),
                               schedule.Flip(0.5));
      }
    }

    Controller::Stats mid = stack.controller().stats();
    EXPECT_GT(mid.deadline_parks, 0u)
        << "seed " << seed << ": storm never expired a commit deadline";

    // Heal the devices, then drain: every parked op must reach its device
    // through outbox repair within a bounded number of passes.
    for (size_t d = 0; d < stack.device_count(); ++d) {
      if (ha::FaultyRuntimeClient* faulty = stack.faulty(d)) {
        ha::FaultPolicy healthy = faulty->policy();
        healthy.write_fail_probability = 0;
        faulty->set_policy(healthy);
      }
    }
    for (int pass = 0; pass < 4; ++pass) {
      ASSERT_TRUE(stack.controller().RunAntiEntropy().ok());
    }
    Controller::Stats drained = stack.controller().stats();
    for (const auto& [device, size] : drained.outbox_sizes) {
      EXPECT_EQ(size, 0u) << "seed " << seed << ": " << device
                          << " still holds parked ops";
    }
    EXPECT_GT(drained.outbox_repairs, 0u)
        << "seed " << seed << ": parked ops drained by something other "
           "than outbox repair";

    // No op dropped, none double-applied: with every outbox empty a full
    // reconciliation against the engine's desired state must be a no-op
    // on every device.
    Controller::Stats before = stack.controller().stats();
    for (size_t d = 0; d < stack.device_count(); ++d) {
      ASSERT_TRUE(
          stack.controller().ResyncDevice(StrFormat("sw%zu", d)).ok());
    }
    Controller::Stats after = stack.controller().stats();
    EXPECT_EQ(after.resync_inserted, before.resync_inserted)
        << "seed " << seed << ": an op was dropped (resync re-inserted it)";
    EXPECT_EQ(after.resync_deleted, before.resync_deleted)
        << "seed " << seed
        << ": an op was double-applied (resync had to delete)";
    EXPECT_EQ(after.resync_modified, before.resync_modified);
  }
}

// Determinism of the harness itself: the same seed must produce the same
// fault counts (and therefore the same storm) run to run.
TEST(ChaosSoak, ScheduleIsDeterministic) {
  chaos::ChaosSchedule a(7), b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Flip(0.3), b.Flip(0.3));
    ASSERT_EQ(a.Pick(97), b.Pick(97));
  }
  ASSERT_EQ(a.Fork(), b.Fork());
}

}  // namespace
}  // namespace nerpa
