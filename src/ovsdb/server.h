// A TCP OVSDB server: the management plane behind a real process-style
// boundary, speaking the RFC 7047 JSON-RPC methods the prototype's OVSDB
// spoke ("get_schema", "transact", "monitor", "monitor_cancel", "echo",
// "list_dbs").  Monitor updates are pushed to subscribers as "update"
// notifications.
//
// Threading model: the server owns a single service thread which is the
// ONLY accessor of the Database after Start() — clients (including the
// in-process OvsdbClient) interact exclusively through the socket.
#ifndef NERPA_OVSDB_SERVER_H_
#define NERPA_OVSDB_SERVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "ovsdb/database.h"
#include "ovsdb/jsonrpc.h"

namespace nerpa::ovsdb {

class OvsdbServer {
 public:
  /// Takes ownership of the database.  Nothing listens until Start().
  explicit OvsdbServer(std::unique_ptr<Database> db);
  ~OvsdbServer();

  OvsdbServer(const OvsdbServer&) = delete;
  OvsdbServer& operator=(const OvsdbServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the service thread.
  Status Start(uint16_t port = 0);
  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }
  /// Stops the service thread and closes every connection.
  void Stop();

  /// Requests served (for tests).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Client {
    int fd = -1;
    JsonStreamSplitter splitter;
    std::string outbox;
    // monitor name (client-chosen id, dumped json) -> database monitor id
    std::map<std::string, uint64_t> monitors;
  };

  void ServiceLoop();
  void HandleDocument(Client& client, std::string_view text);
  JsonRpcMessage HandleRequest(Client& client, const JsonRpcMessage& request);
  Result<Json> DoMonitor(Client& client, const Json& params);
  Result<Json> DoMonitorCancel(Client& client, const Json& params);
  void SendTo(Client& client, const JsonRpcMessage& message);
  void FlushOutbox(Client& client);
  void DropClient(size_t index);

  std::unique_ptr<Database> db_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::vector<std::unique_ptr<Client>> clients_;
};

/// Serializes a table-updates delta in the wire form used by "update"
/// notifications: {table: {uuid: {"old": row?, "new": row?}}}.
Json TableUpdatesToJson(const DatabaseSchema& schema,
                        const TableUpdates& updates);

}  // namespace nerpa::ovsdb

#endif  // NERPA_OVSDB_SERVER_H_
