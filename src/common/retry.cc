#include "common/retry.h"

#include <algorithm>

namespace nerpa {

namespace {

uint64_t NextRand(uint64_t* state) {
  // xorshift64*: tiny, seedable, and plenty for jitter draws.
  uint64_t x = *state;
  if (x == 0) x = 0x9e3779b97f4a7c15ULL;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545f4914f6cdd1dULL;
}

}  // namespace

int64_t JitterNanos(int64_t nominal_nanos, double frac, uint64_t* rng_state) {
  if (nominal_nanos <= 0 || frac <= 0) return nominal_nanos;
  double unit =
      static_cast<double>(NextRand(rng_state) >> 11) / 9007199254740992.0;
  double scale = 1.0 - frac + 2.0 * frac * unit;  // uniform in [1-f, 1+f]
  int64_t jittered =
      static_cast<int64_t>(static_cast<double>(nominal_nanos) * scale);
  return std::max<int64_t>(jittered, 0);
}

Backoff::Backoff(const BackoffPolicy& policy, uint64_t seed)
    : policy_(policy),
      nominal_nanos_(policy.initial_nanos),
      rng_state_(seed != 0 ? seed : 0x9e3779b97f4a7c15ULL) {}

int64_t Backoff::NextDelayNanos() {
  int64_t nominal = nominal_nanos_;
  nominal_nanos_ = std::min<int64_t>(
      policy_.max_nanos,
      static_cast<int64_t>(static_cast<double>(nominal_nanos_) *
                           policy_.multiplier));
  return JitterNanos(nominal, policy_.jitter_frac, &rng_state_);
}

void Backoff::Reset() { nominal_nanos_ = policy_.initial_nanos; }

RetryBudget::RetryBudget(double max_tokens, double ratio)
    : max_tokens_(max_tokens), ratio_(ratio), tokens_(max_tokens) {}

void RetryBudget::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = std::min(max_tokens_, tokens_ + ratio_);
}

bool RetryBudget::TryWithdraw() {
  std::lock_guard<std::mutex> lock(mu_);
  if (tokens_ < 1.0) {
    ++exhausted_;
    return false;
  }
  tokens_ -= 1.0;
  return true;
}

double RetryBudget::tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tokens_;
}

uint64_t RetryBudget::exhausted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exhausted_;
}

}  // namespace nerpa
