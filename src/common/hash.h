// Hashing helpers: FNV-1a and boost-style hash combination.
#ifndef NERPA_COMMON_HASH_H_
#define NERPA_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace nerpa {

/// 64-bit FNV-1a over raw bytes.
inline uint64_t Fnv1a(const void* data, size_t size,
                      uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t Fnv1a(std::string_view s) { return Fnv1a(s.data(), s.size()); }

/// Mixes `value`'s hash into `seed` (boost::hash_combine recipe, 64-bit).
template <typename T>
inline void HashCombine(size_t& seed, const T& value) {
  std::hash<T> hasher;
  seed ^= hasher(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

}  // namespace nerpa

#endif  // NERPA_COMMON_HASH_H_
