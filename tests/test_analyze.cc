// Golden-diagnostic tests for the full-stack static analyzer: one fixture
// per diagnostic code asserting the code, the exact line:column span, and a
// message substring — plus clean runs over every stack the repository ships
// (the CI gate depends on those staying clean).
#include "analyze/analyze.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyze/interval.h"
#include "ovsdb/schema.h"
#include "p4/text.h"
#include "stacks.h"

namespace nerpa::analyze {
namespace {

using testing::AssertionFailure;
using testing::AssertionResult;
using testing::AssertionSuccess;

/// Asserts exactly one diagnostic with `code` exists and matches the span
/// and message substring.
AssertionResult HasDiag(const Analysis& analysis, const std::string& code,
                        int line, int col, const std::string& substring) {
  const Diagnostic* found = nullptr;
  int count = 0;
  for (const Diagnostic& d : analysis.diagnostics) {
    if (d.code == code) {
      found = &d;
      ++count;
    }
  }
  if (count == 0) {
    std::string all;
    for (const Diagnostic& d : analysis.diagnostics) {
      all += "\n  " + d.code + " @" + std::to_string(d.line) + ":" +
             std::to_string(d.col) + " " + d.message;
    }
    return AssertionFailure() << "no " << code << " diagnostic; got:" << all;
  }
  if (count > 1) {
    return AssertionFailure() << count << " " << code << " diagnostics";
  }
  if (found->line != line || found->col != col) {
    return AssertionFailure()
           << code << " at " << found->line << ":" << found->col
           << ", expected " << line << ":" << col << " (" << found->message
           << ")";
  }
  if (found->message.find(substring) == std::string::npos) {
    return AssertionFailure() << code << " message '" << found->message
                              << "' lacks '" << substring << "'";
  }
  return AssertionSuccess();
}

// --- NW0xx / NW1xx: dlog-only analysis -------------------------------------

TEST(AnalyzeDlog, Nw001ParseErrorCarriesSpan) {
  Analysis analysis = AnalyzeDlog("relation Foo(x bigint)\n");
  ASSERT_EQ(analysis.diagnostics.size(), 1u);
  EXPECT_TRUE(HasDiag(analysis, "NW001", 1, 16, "expected ':'"));
  EXPECT_EQ(analysis.errors(), 1);
}

TEST(AnalyzeDlog, Nw002CompileErrorPassthrough) {
  // Type error the AST lints cannot see: bigint column fed a string.
  Analysis analysis = AnalyzeDlog(
      "input relation E(x: bigint)\n"
      "output relation O(x: bigint)\n"
      "O(x + \"s\") :- E(x).\n");
  EXPECT_TRUE(HasDiag(analysis, "NW002", 3, 7, "expected bigint"));
}

TEST(AnalyzeDlog, Nw101UnboundHeadVar) {
  Analysis analysis = AnalyzeDlog(
      "input relation E(a: bigint, b: bigint)\n"
      "output relation O(x: bigint, y: bigint)\n"
      "O(a, c) :- E(a, b).\n");
  EXPECT_TRUE(HasDiag(analysis, "NW101", 3, 6, "head variable 'c'"));
}

TEST(AnalyzeDlog, Nw102UnusedRelation) {
  Analysis analysis = AnalyzeDlog(
      "input relation E(a: bigint)\n"
      "relation Never(x: bigint)\n"
      "output relation O(x: bigint)\n"
      "O(a) :- E(a).\n");
  EXPECT_TRUE(HasDiag(analysis, "NW102", 2, 10, "'Never' is never read"));
}

TEST(AnalyzeDlog, Nw103DuplicateRule) {
  Analysis analysis = AnalyzeDlog(
      "input relation E(a: bigint)\n"
      "output relation O(x: bigint)\n"
      "O(a) :- E(a).\n"
      "O(a) :- E(a).\n");
  EXPECT_TRUE(HasDiag(analysis, "NW103", 4, 1, "first defined at line 3:1"));
}

TEST(AnalyzeDlog, Nw104StratificationAtOffendingLiteral) {
  Analysis analysis = AnalyzeDlog(
      "input relation E(a: bigint)\n"
      "relation Odd(x: bigint)\n"
      "relation Even(x: bigint)\n"
      "output relation O(x: bigint)\n"
      "Odd(x) :- E(x), not Even(x).\n"
      "Even(x) :- E(x), not Odd(x).\n"
      "O(x) :- Odd(x).\n");
  // Both rules carry a violating literal; check the first (line 5, at the
  // negated atom, column of `Even`).
  bool found = false;
  for (const Diagnostic& d : analysis.diagnostics) {
    if (d.code == "NW104" && d.line == 5 && d.col == 17) found = true;
    if (d.code == "NW104") {
      EXPECT_NE(d.message.find("not stratifiable"), std::string::npos);
    }
  }
  EXPECT_TRUE(found) << "no NW104 at 5:17";
}

TEST(AnalyzeDlog, Nw105SingletonVariable) {
  Analysis analysis = AnalyzeDlog(
      "input relation E(a: bigint, b: bigint)\n"
      "output relation O(x: bigint)\n"
      "O(a) :- E(a, junk).\n");
  EXPECT_TRUE(HasDiag(analysis, "NW105", 3, 14, "'junk' is bound but"));
}

TEST(AnalyzeDlog, UnderscorePrefixSuppressesNw105) {
  Analysis analysis = AnalyzeDlog(
      "input relation E(a: bigint, b: bigint)\n"
      "output relation O(x: bigint)\n"
      "O(a) :- E(a, _junk).\n");
  EXPECT_TRUE(analysis.clean());
}

TEST(AnalyzeDlog, JoinVariableIsNotSingleton) {
  Analysis analysis = AnalyzeDlog(
      "input relation E(a: bigint, b: bigint)\n"
      "output relation O(x: bigint)\n"
      "O(a) :- E(a, j), E(j, _).\n");
  EXPECT_TRUE(analysis.clean());
}

// --- NW2xx: cross-plane fixture --------------------------------------------

// A schema whose `ip` exceeds 32 bits and whose `plen` exceeds the LPM key
// width — every range-analysis check has something to find.
constexpr const char* kSchema = R"({
  "name": "fab",
  "tables": {
    "Host": {
      "columns": {
        "ip": {"type": {"key":
            {"type": "integer", "minInteger": 0, "maxInteger": 8589934591}}},
        "plen": {"type": {"key":
            {"type": "integer", "minInteger": 0, "maxInteger": 64}}},
        "port": {"type": {"key":
            {"type": "integer", "minInteger": 0, "maxInteger": 65535}}}
      }
    }
  }
})";

constexpr const char* kP4 = R"(
program fab;
header ipv4 {
  bit<32> src;
  bit<32> dst;
}
digest Learn {
  ipv4.src: bit<32>;
}
parser {
  state start {
    extract(ipv4);
    goto accept;
  }
  state orphan {
    goto accept;
  }
}
action Discard() { drop(); }
action Route(bit<16> port) { output(port); }
action Lost() { drop(); }
table IpRoute {
  key = { ipv4.dst: lpm; }
  actions = { Route; }
  default_action = Discard;
}
table Acl {
  key = { ipv4.src: ternary; }
  actions = { Discard; }
}
table Ghost {
  key = { ipv4.src: exact; }
  actions = { Discard; }
}
ingress {
  apply(IpRoute);
  apply(Acl);
}
egress { }
deparser {
  emit(ipv4);
}
)";

class CrossPlaneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = ovsdb::DatabaseSchema::FromJsonText(kSchema);
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    schema_ = std::move(schema).value();
    auto p4 = p4::ParseP4Text(kP4);
    ASSERT_TRUE(p4.ok()) << p4.status().ToString();
    p4_ = std::move(p4).value();
  }

  Analysis Analyze(const std::string& rules, AnalyzeOptions options = {}) {
    StackInput input;
    input.schema = &schema_;
    input.p4 = p4_.get();
    input.rules = rules;
    auto analysis = AnalyzeStack(input, options);
    EXPECT_TRUE(analysis.ok());
    return std::move(analysis).value();
  }

  /// Line number of `rules`'s first line inside the combined source (the
  /// generated declarations are prepended).
  int RulesStart(const Analysis& analysis, const std::string& rules) {
    size_t at = analysis.dlog_source.find(rules);
    EXPECT_NE(at, std::string::npos);
    int line = 1;
    for (size_t i = 0; i < at; ++i) {
      if (analysis.dlog_source[i] == '\n') ++line;
    }
    return line;
  }

  ovsdb::DatabaseSchema schema_;
  std::shared_ptr<const p4::P4Program> p4_;
};

TEST_F(CrossPlaneTest, Nw201OutputBoundToNoTable) {
  std::string rules =
      "output relation Orphan(x: bigint)\n"
      "Orphan(p) :- Host(_, _, _, p).\n"
      "IpRoute(0, 0, \"Route\", p as bit<16>) :- Host(_, _, _, p),"
      " Learn(_).\n"
      "Acl(s, s, 1, \"Discard\") :- Learn(s).\n";
  Analysis analysis = Analyze(rules);
  int base = RulesStart(analysis, rules);
  EXPECT_TRUE(HasDiag(analysis, "NW201", base, 17,
                      "'Orphan' is not bound to any P4 table"));
}

TEST_F(CrossPlaneTest, Nw201MulticastRelationExempt) {
  std::string rules =
      "output relation Orphan(x: bigint)\n"
      "Orphan(p) :- Host(_, _, _, p).\n"
      "IpRoute(0, 0, \"Route\", p as bit<16>) :- Host(_, _, _, p),"
      " Learn(_).\n"
      "Acl(s, s, 1, \"Discard\") :- Learn(s).\n";
  AnalyzeOptions options;
  options.multicast_relations = {"Orphan"};
  Analysis analysis = Analyze(rules, options);
  for (const Diagnostic& d : analysis.diagnostics) {
    EXPECT_NE(d.code, "NW201") << d.message;
  }
}

TEST_F(CrossPlaneTest, Nw202CastMayTruncate) {
  // ip's schema range [0, 2^33-1] cannot fit bit<32>.
  std::string rules =
      "IpRoute(ip as bit<32>, plen, \"Route\","
      " p as bit<16>) :- Host(_, ip, plen, p), plen <= 32, Learn(_).\n"
      "Acl(s, s, 1, \"Discard\") :- Learn(s).\n";
  Analysis analysis = Analyze(rules);
  int base = RulesStart(analysis, rules);
  EXPECT_TRUE(HasDiag(analysis, "NW202", base, 9,
                      "cast to bit<32> may truncate"));
}

TEST_F(CrossPlaneTest, Nw203LpmPrefixLengthOutOfBounds) {
  // plen's schema range [0, 64] exceeds the 32-bit LPM key.
  std::string rules =
      "IpRoute(0, plen, \"Route\", p as bit<16>) :- Host(_, _, plen, p),"
      " Learn(_).\n"
      "Acl(s, s, 1, \"Discard\") :- Learn(s).\n";
  Analysis analysis = Analyze(rules);
  int base = RulesStart(analysis, rules);
  EXPECT_TRUE(HasDiag(analysis, "NW203", base, 12, "must lie in [0, 32]"));
}

TEST_F(CrossPlaneTest, Nw203RefinedBoundIsClean) {
  // The same column, but the body proves plen <= 32.
  std::string rules =
      "IpRoute(0, plen, \"Route\", p as bit<16>) :- Host(_, _, plen, p),"
      " plen <= 32, Learn(_).\n"
      "Acl(s, s, 1, \"Discard\") :- Learn(s).\n";
  Analysis analysis = Analyze(rules);
  for (const Diagnostic& d : analysis.diagnostics) {
    EXPECT_NE(d.code, "NW203") << d.message;
  }
}

TEST_F(CrossPlaneTest, Nw204DeclShapeMismatch) {
  // Complete program with one wrong column type in a generated decl.
  std::string rules =
      "input relation Host(_uuid: string, ip: bigint, plen: bigint,"
      " port: bit<16>)\n"
      "input relation Learn(ipv4_src: bit<32>)\n"
      "output relation IpRoute(ipv4_dst: bit<32>, ipv4_dst_plen: bigint,"
      " action: string, port: bit<16>)\n"
      "output relation Acl(ipv4_src: bit<32>, ipv4_src_mask: bit<32>,"
      " priority: bigint, action: string)\n"
      "output relation Ghost(ipv4_src: bit<32>, action: string)\n"
      "IpRoute(0, 0, \"Route\", p) :- Host(_, _, _, p), Learn(_).\n"
      "Acl(s, s, 1, \"Discard\") :- Learn(s).\n"
      "Ghost(s, \"Discard\") :- Learn(s).\n";
  AnalyzeOptions options;
  options.rules_include_decls = true;
  Analysis analysis = Analyze(rules, options);
  EXPECT_TRUE(HasDiag(analysis, "NW204", 1, 62,
                      "expected 'port: bigint', found 'port: bit<16>'"));
}

TEST_F(CrossPlaneTest, Nw205UnpermittedAction) {
  std::string rules =
      "IpRoute(0, 0, \"Rout\", p as bit<16>) :- Host(_, _, _, p),"
      " Learn(_).\n"
      "Acl(s, s, 1, \"Discard\") :- Learn(s).\n";
  Analysis analysis = Analyze(rules);
  int base = RulesStart(analysis, rules);
  EXPECT_TRUE(HasDiag(analysis, "NW205", base, 15,
                      "action 'Rout' is not permitted by P4 table"));
}

TEST_F(CrossPlaneTest, Nw206DigestNeverRead) {
  std::string rules =
      "IpRoute(0, 0, \"Route\", p as bit<16>) :- Host(_, _, _, p).\n"
      "Acl(0, 0, 1, \"Discard\") :- Host(_, _, _, _).\n";
  Analysis analysis = Analyze(rules);
  // The span lands on the generated `input relation Learn(...)` decl.
  const Diagnostic* found = nullptr;
  for (const Diagnostic& d : analysis.diagnostics) {
    if (d.code == "NW206") found = &d;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_NE(found->message.find("digest 'Learn'"), std::string::npos);
  EXPECT_GT(found->line, 0);
}

TEST_F(CrossPlaneTest, Nw207PriorityOutOfRange) {
  // port*port reaches 65535^2 > 2^31-1.
  std::string rules =
      "IpRoute(0, 0, \"Route\", p as bit<16>) :- Host(_, _, _, p),"
      " Learn(_).\n"
      "Acl(s, s, p * p, \"Discard\") :- Learn(s), Host(_, _, _, p).\n";
  Analysis analysis = Analyze(rules);
  int base = RulesStart(analysis, rules) + 1;
  EXPECT_TRUE(HasDiag(analysis, "NW207", base, 11,
                      "must lie in [0, 2^31-1]"));
}

TEST_F(CrossPlaneTest, Nw208UnmonitoredColumn) {
  std::string rules =
      "IpRoute(0, 0, \"Route\", p as bit<16>) :- Host(_, _, _, p),"
      " Learn(_).\n"
      "Acl(s, s, 1, \"Discard\") :- Learn(s).\n";
  AnalyzeOptions options;
  options.monitored_columns["Host"] = {"ip", "plen"};  // port left out
  Analysis analysis = Analyze(rules, options);
  // The span lands on the generated `input relation Host(...)` decl.
  const Diagnostic* found = nullptr;
  int count = 0;
  for (const Diagnostic& d : analysis.diagnostics) {
    if (d.code == "NW208") {
      found = &d;
      ++count;
    }
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(count, 1);  // only `port` is uncovered
  EXPECT_NE(found->message.find("'Host.port'"), std::string::npos);
  EXPECT_GT(found->line, 0);
}

TEST_F(CrossPlaneTest, Nw208OnDemandColumnIsCovered) {
  std::string rules =
      "IpRoute(0, 0, \"Route\", p as bit<16>) :- Host(_, _, _, p),"
      " Learn(_).\n"
      "Acl(s, s, 1, \"Discard\") :- Learn(s).\n";
  AnalyzeOptions options;
  options.monitored_columns["Host"] = {"ip", "plen"};
  options.on_demand_columns["Host"] = {"port"};
  Analysis analysis = Analyze(rules, options);
  for (const Diagnostic& d : analysis.diagnostics) {
    EXPECT_NE(d.code, "NW208") << d.message;
  }
}

TEST_F(CrossPlaneTest, Nw208EmptyColumnListMonitorsWholeTable) {
  std::string rules =
      "IpRoute(0, 0, \"Route\", p as bit<16>) :- Host(_, _, _, p),"
      " Learn(_).\n"
      "Acl(s, s, 1, \"Discard\") :- Learn(s).\n";
  AnalyzeOptions options;
  options.monitored_columns["Host"] = {};  // all columns
  Analysis analysis = Analyze(rules, options);
  for (const Diagnostic& d : analysis.diagnostics) {
    EXPECT_NE(d.code, "NW208") << d.message;
  }
}

TEST_F(CrossPlaneTest, Nw208SilentWithoutMonitorSpec) {
  std::string rules =
      "IpRoute(0, 0, \"Route\", p as bit<16>) :- Host(_, _, _, p),"
      " Learn(_).\n"
      "Acl(s, s, 1, \"Discard\") :- Learn(s).\n";
  Analysis analysis = Analyze(rules);  // no spec: the audit is off
  for (const Diagnostic& d : analysis.diagnostics) {
    EXPECT_NE(d.code, "NW208") << d.message;
  }
}

TEST_F(CrossPlaneTest, Nw208TableAbsentFromSpecWarnsAllColumns) {
  // A spec that only mentions some other table means Host itself is
  // unmonitored: every bound column warns.
  std::string rules =
      "IpRoute(0, 0, \"Route\", p as bit<16>) :- Host(_, _, _, p),"
      " Learn(_).\n"
      "Acl(s, s, 1, \"Discard\") :- Learn(s).\n";
  AnalyzeOptions options;
  options.monitored_columns["Elsewhere"] = {};
  Analysis analysis = Analyze(rules, options);
  int count = 0;
  for (const Diagnostic& d : analysis.diagnostics) {
    if (d.code == "NW208") ++count;
  }
  EXPECT_EQ(count, 3);  // ip, plen, port (never _uuid)
}

// --- NW3xx: P4 IR reachability ---------------------------------------------

class P4ChecksTest : public CrossPlaneTest {};

TEST_F(P4ChecksTest, Nw301Nw302Nw303) {
  std::string rules =
      "IpRoute(0, 0, \"Route\", p as bit<16>) :- Host(_, _, _, p),"
      " Learn(_).\n"
      "Acl(s, s, 1, \"Discard\") :- Learn(s).\n";
  Analysis analysis = Analyze(rules);
  // Spans point into kP4 (leading newline: `program fab;` is line 2).
  EXPECT_TRUE(HasDiag(analysis, "NW301", 31, 7, "table 'Ghost' is never"));
  EXPECT_TRUE(HasDiag(analysis, "NW302", 21, 8, "action 'Lost' is not"));
  EXPECT_TRUE(
      HasDiag(analysis, "NW303", 15, 9, "parser state 'orphan'"));
  for (const Diagnostic& d : analysis.diagnostics) {
    if (d.code[2] == '3') {
      EXPECT_EQ(d.unit, "p4");
    }
  }
}

// --- shipped stacks stay clean (the CI gate) -------------------------------

TEST(ShippedStacks, AllBuiltinsAnalyzeClean) {
  for (const std::string& name : examples::StackNames()) {
    auto stack = examples::GetStack(name);
    ASSERT_TRUE(stack.ok()) << name;
    StackInput input;
    if (stack->schema.has_value()) input.schema = &*stack->schema;
    if (stack->p4 != nullptr) input.p4 = stack->p4.get();
    input.rules = stack->rules;
    input.binding_options = stack->options;
    AnalyzeOptions options;
    options.multicast_relations = stack->multicast_relations;
    options.rules_include_decls =
        input.schema == nullptr && input.p4 == nullptr;
    auto analysis = AnalyzeStack(input, options);
    ASSERT_TRUE(analysis.ok()) << name;
    std::string report;
    for (const Diagnostic& d : analysis->diagnostics) {
      report += "\n  " + d.code + " @" + std::to_string(d.line) + ":" +
                std::to_string(d.col) + " " + d.message;
    }
    EXPECT_TRUE(analysis->clean()) << name << ":" << report;
  }
}

// --- interval domain sanity ------------------------------------------------

TEST(Interval, ArithmeticAndLattice) {
  Interval a = Interval::Range(0, 10);
  Interval b = Interval::Range(-3, 4);
  EXPECT_EQ(a.Add(b), Interval::Range(-3, 14));
  EXPECT_EQ(a.Sub(b), Interval::Range(-4, 13));
  EXPECT_EQ(a.Mul(b), Interval::Range(-30, 40));
  EXPECT_EQ(a.Join(b), Interval::Range(-3, 10));
  EXPECT_EQ(a.Meet(b), Interval::Range(0, 4));
  EXPECT_TRUE(Interval::Bottom().ContainedIn(a));
  EXPECT_TRUE(a.Meet(Interval::Range(20, 30)).is_bottom());
  EXPECT_TRUE(Interval::Range(0, 255).FitsBits(8));
  EXPECT_FALSE(Interval::Range(0, 256).FitsBits(8));
  EXPECT_FALSE(Interval::Range(-1, 0).FitsBits(8));
}

TEST(Interval, DivisionByIntervalContainingZeroIsTop) {
  Interval a = Interval::Range(1, 10);
  EXPECT_TRUE(a.Div(Interval::Range(-1, 1)).is_top());
  EXPECT_EQ(a.Div(Interval::Point(2)), Interval::Range(0, 5));
}

TEST(Interval, SaturationTerminates) {
  // Repeated doubling must reach the saturation bound, not overflow.
  Interval v = Interval::Point(1);
  for (int i = 0; i < 500; ++i) v = v.Add(v);
  EXPECT_EQ(v.hi, Interval::kMax);
}

}  // namespace
}  // namespace nerpa::analyze
