# Empty compiler generated dependencies file for test_nerpa_bindings.
# This may be replaced when dependencies are built.
