#include "net/ip.h"

#include <cctype>

#include "common/strings.h"

namespace nerpa::net {

std::optional<Ipv4> Ipv4::Parse(std::string_view text) {
  uint32_t bits = 0;
  int octets = 0;
  size_t i = 0;
  while (i <= text.size()) {
    int value = 0;
    int digits = 0;
    while (i < text.size() && digits < 3 &&
           std::isdigit(static_cast<unsigned char>(text[i]))) {
      value = value * 10 + (text[i++] - '0');
      ++digits;
    }
    if (digits == 0 || value > 255) return std::nullopt;
    bits = (bits << 8) | static_cast<unsigned>(value);
    ++octets;
    if (i == text.size()) break;
    if (text[i] != '.') return std::nullopt;
    ++i;
  }
  if (octets != 4) return std::nullopt;
  return Ipv4(bits);
}

std::string Ipv4::ToString() const {
  return StrFormat("%u.%u.%u.%u", (bits_ >> 24) & 0xFF, (bits_ >> 16) & 0xFF,
                   (bits_ >> 8) & 0xFF, bits_ & 0xFF);
}

Ipv4Prefix::Ipv4Prefix(Ipv4 addr, int length) : length_(length) {
  if (length_ < 0) length_ = 0;
  if (length_ > 32) length_ = 32;
  addr_ = Ipv4(addr.bits() & Mask());
}

std::optional<Ipv4Prefix> Ipv4Prefix::Parse(std::string_view text) {
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    auto addr = Ipv4::Parse(text);
    if (!addr) return std::nullopt;
    return Ipv4Prefix(*addr, 32);
  }
  auto addr = Ipv4::Parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  if (len_text.empty() || len_text.size() > 2) return std::nullopt;
  int length = 0;
  for (char c : len_text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    length = length * 10 + (c - '0');
  }
  if (length > 32) return std::nullopt;
  return Ipv4Prefix(*addr, length);
}

std::string Ipv4Prefix::ToString() const {
  return addr_.ToString() + "/" + std::to_string(length_);
}

}  // namespace nerpa::net
