// dlog_cli — load a Datalog program and drive it interactively (or from a
// piped script): the developer loop for writing control-plane rules.
//
//   $ ./build/tools/dlog_cli program.dl
//   dlog> insert Edge(1, 2)
//   dlog> insert GivenLabel(1, "blue")
//   dlog> commit
//   + Label(1, "blue")
//   + Label(2, "blue")
//   dlog> dump Label
//   dlog> delete Edge(1, 2)
//   dlog> commit
//
// Commands: insert R(v, ...), delete R(v, ...), commit, dump R, relations,
// stats, source, help, quit.  Values: integers (coerced to the column's
// bit<N>/bigint type), "strings", true/false, and [v, ...] vectors.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analyze/diag.h"
#include "common/strings.h"
#include "dlog/engine.h"
#include "dlog/lexer.h"
#include "dlog/program.h"

namespace nerpa::dlog {
namespace {

/// Parses a literal value for `type` from the token stream.
Result<Value> ParseValue(const std::vector<Token>& tokens, size_t& pos,
                         const Type& type) {
  if (pos >= tokens.size()) return ParseError("expected a value");
  const Token& token = tokens[pos];
  bool negative = token.IsPunct("-");
  if (negative) ++pos;
  const Token& t = tokens[pos];
  switch (type.kind) {
    case Type::Kind::kInt:
      if (!t.Is(TokKind::kInt)) return ParseError("expected an integer");
      ++pos;
      return Value::Int(negative ? -t.int_value : t.int_value);
    case Type::Kind::kBit: {
      if (!t.Is(TokKind::kInt) || negative) {
        return ParseError("expected an unsigned integer");
      }
      uint64_t raw = static_cast<uint64_t>(t.int_value);
      if (type.MaskBits(raw) != raw) {
        return ParseError(StrFormat("value does not fit %s",
                                    type.ToString().c_str()));
      }
      ++pos;
      return Value::Bit(raw);
    }
    case Type::Kind::kBool:
      ++pos;
      if (t.IsIdent("true")) return Value::Bool(true);
      if (t.IsIdent("false")) return Value::Bool(false);
      return ParseError("expected true/false");
    case Type::Kind::kString:
      if (!t.Is(TokKind::kString)) return ParseError("expected a \"string\"");
      ++pos;
      return Value::String(t.text);
    case Type::Kind::kVec: {
      if (!t.IsPunct("[")) return ParseError("expected '['");
      ++pos;
      ValueVec elems;
      if (!tokens[pos].IsPunct("]")) {
        while (true) {
          NERPA_ASSIGN_OR_RETURN(Value v,
                                 ParseValue(tokens, pos, type.elems[0]));
          elems.push_back(std::move(v));
          if (tokens[pos].IsPunct(",")) {
            ++pos;
            continue;
          }
          break;
        }
      }
      if (!tokens[pos].IsPunct("]")) return ParseError("expected ']'");
      ++pos;
      return Value::Tuple(std::move(elems));
    }
    case Type::Kind::kTuple: {
      if (!t.IsPunct("(")) return ParseError("expected '('");
      ++pos;
      ValueVec elems;
      for (size_t i = 0; i < type.elems.size(); ++i) {
        if (i > 0) {
          if (!tokens[pos].IsPunct(",")) return ParseError("expected ','");
          ++pos;
        }
        NERPA_ASSIGN_OR_RETURN(Value v, ParseValue(tokens, pos, type.elems[i]));
        elems.push_back(std::move(v));
      }
      if (!tokens[pos].IsPunct(")")) return ParseError("expected ')'");
      ++pos;
      return Value::Tuple(std::move(elems));
    }
  }
  return ParseError("unsupported type");
}

Result<std::pair<std::string, Row>> ParseAtomCommand(
    const Program& program, const std::vector<Token>& tokens, size_t pos) {
  if (!tokens[pos].Is(TokKind::kIdent)) {
    return ParseError("expected a relation name");
  }
  std::string relation = tokens[pos++].text;
  int id = program.FindRelation(relation);
  if (id < 0) return NotFound("no relation '" + relation + "'");
  const RelationDecl& decl = program.relation(id);
  if (!tokens[pos].IsPunct("(")) return ParseError("expected '('");
  ++pos;
  Row row;
  for (size_t c = 0; c < decl.columns.size(); ++c) {
    if (c > 0) {
      if (!tokens[pos].IsPunct(",")) return ParseError("expected ','");
      ++pos;
    }
    NERPA_ASSIGN_OR_RETURN(Value v,
                           ParseValue(tokens, pos, decl.columns[c].type));
    row.push_back(std::move(v));
  }
  if (!tokens[pos].IsPunct(")")) {
    return ParseError(StrFormat("expected ')' — %s takes %zu columns",
                                decl.name.c_str(), decl.columns.size()));
  }
  return std::make_pair(std::move(relation), std::move(row));
}

int Repl(const std::string& path, const std::string& source) {
  auto program = Program::Parse(source);
  if (!program.ok()) {
    // Frontend errors carry "line L:C:" spans — render them with a caret
    // snippet like nerpa_check does.
    const std::string& message = program.status().message();
    int line = 0, col = 0, prefix = 0;
    if (std::sscanf(message.c_str(), "line %d:%d:%n", &line, &col, &prefix) ==
        2) {
      // Drop the "line L:C:" prefix — the span is already in the location.
      std::string detail = message.substr(prefix);
      while (!detail.empty() && detail.front() == ' ') detail.erase(0, 1);
      std::fprintf(stderr, "%s:%d:%d: error: %s\n%s", path.c_str(), line,
                   col, detail.c_str(),
                   nerpa::analyze::CaretSnippet(source, line, col).c_str());
    } else {
      std::fprintf(stderr, "error: %s\n", program.status().ToString().c_str());
    }
    return 1;
  }
  Engine engine(*program);
  TxnDelta initial = engine.TakeInitialDelta();
  if (!initial.empty()) {
    std::printf("%s", initial.ToString().c_str());
  }
  bool interactive = isatty(fileno(stdin));
  std::string line;
  int pending = 0;
  while (true) {
    if (interactive) {
      std::printf("dlog> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto tokens = Tokenize(trimmed);
    if (!tokens.ok()) {
      std::printf("error: %s\n", tokens.status().ToString().c_str());
      continue;
    }
    const std::string& command = (*tokens)[0].text;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      std::printf(
          "commands: insert R(v, ...) | delete R(v, ...) | commit |\n"
          "          dump R | relations | stats | source | quit\n");
    } else if (command == "relations") {
      for (const RelationDecl& decl : (*program)->relations()) {
        std::printf("%s  (%zu rows)\n", decl.ToString().c_str(),
                    engine.Size(decl.name));
      }
    } else if (command == "source") {
      std::printf("%s", (*program)->ast().ToString().c_str());
    } else if (command == "stats") {
      auto stats = engine.GetStats();
      std::printf("transactions=%llu rule_firings=%llu tuples=%zu "
                  "arrangement_entries=%zu pending_ops=%d\n",
                  static_cast<unsigned long long>(stats.transactions),
                  static_cast<unsigned long long>(stats.rule_firings),
                  stats.tuples, stats.arrangement_entries, pending);
    } else if (command == "commit") {
      auto delta = engine.Commit();
      pending = 0;
      if (!delta.ok()) {
        std::printf("error: %s\n", delta.status().ToString().c_str());
      } else if (delta->empty()) {
        std::printf("(no output changes)\n");
      } else {
        std::printf("%s", delta->ToString().c_str());
      }
    } else if (command == "dump") {
      if (tokens->size() < 2 || !(*tokens)[1].Is(TokKind::kIdent)) {
        std::printf("usage: dump RelationName\n");
        continue;
      }
      auto rows = engine.Dump((*tokens)[1].text);
      if (!rows.ok()) {
        std::printf("error: %s\n", rows.status().ToString().c_str());
        continue;
      }
      for (const Row& row : *rows) {
        std::printf("%s%s\n", (*tokens)[1].text.c_str(),
                    RowToString(row).c_str());
      }
      std::printf("(%zu rows)\n", rows->size());
    } else if (command == "insert" || command == "delete") {
      auto atom = ParseAtomCommand(**program, *tokens, 1);
      if (!atom.ok()) {
        std::printf("error: %s\n", atom.status().ToString().c_str());
        continue;
      }
      Status status = command == "insert"
                          ? engine.Insert(atom->first, std::move(atom->second))
                          : engine.Delete(atom->first, std::move(atom->second));
      if (!status.ok()) {
        std::printf("error: %s\n", status.ToString().c_str());
      } else {
        ++pending;
      }
    } else {
      std::printf("unknown command '%s' (try 'help')\n", command.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace nerpa::dlog

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s program.dl   (then type 'help' at the prompt)\n",
                 argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream source;
  source << in.rdbuf();
  return nerpa::dlog::Repl(argv[1], source.str());
}
