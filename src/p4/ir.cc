#include "p4/ir.h"

#include "common/strings.h"

namespace nerpa::p4 {

const char* MatchKindName(MatchKind kind) {
  switch (kind) {
    case MatchKind::kExact: return "exact";
    case MatchKind::kLpm: return "lpm";
    case MatchKind::kTernary: return "ternary";
    case MatchKind::kRange: return "range";
    case MatchKind::kOptional: return "optional";
  }
  return "?";
}

int HeaderType::FindField(std::string_view field) const {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == field) return static_cast<int>(i);
  }
  return -1;
}

int HeaderType::TotalBits() const {
  int total = 0;
  for (const P4Field& field : fields) total += field.width;
  return total;
}

ActionOp ActionOp::SetField(FieldRef dest, uint64_t value) {
  ActionOp op;
  op.kind = Kind::kSetFieldConst;
  op.dest = std::move(dest);
  op.immediate = value;
  return op;
}

ActionOp ActionOp::SetFieldFromParam(FieldRef dest, std::string param) {
  ActionOp op;
  op.kind = Kind::kSetFieldParam;
  op.dest = std::move(dest);
  op.param = std::move(param);
  return op;
}

ActionOp ActionOp::CopyField(FieldRef dest, FieldRef src) {
  ActionOp op;
  op.kind = Kind::kCopyField;
  op.dest = std::move(dest);
  op.src = std::move(src);
  return op;
}

ActionOp ActionOp::OutputPort(std::string param) {
  ActionOp op;
  op.kind = Kind::kOutput;
  op.param = std::move(param);
  return op;
}

ActionOp ActionOp::OutputConst(uint64_t port) {
  ActionOp op;
  op.kind = Kind::kOutput;
  op.immediate = port;
  return op;
}

ActionOp ActionOp::MulticastGroup(std::string param) {
  ActionOp op;
  op.kind = Kind::kMulticast;
  op.param = std::move(param);
  return op;
}

ActionOp ActionOp::MulticastConst(uint64_t group) {
  ActionOp op;
  op.kind = Kind::kMulticast;
  op.immediate = group;
  return op;
}

ActionOp ActionOp::Drop() {
  ActionOp op;
  op.kind = Kind::kDrop;
  return op;
}

ActionOp ActionOp::Digest(std::string name) {
  ActionOp op;
  op.kind = Kind::kDigest;
  op.digest_name = std::move(name);
  return op;
}

ActionOp ActionOp::ClonePort(std::string param) {
  ActionOp op;
  op.kind = Kind::kClone;
  op.param = std::move(param);
  return op;
}

ActionOp ActionOp::PushVlan(std::string vid_param) {
  ActionOp op;
  op.kind = Kind::kPushVlan;
  op.param = std::move(vid_param);
  return op;
}

ActionOp ActionOp::PopVlan() {
  ActionOp op;
  op.kind = Kind::kPopVlan;
  return op;
}

int Action::FindParam(std::string_view param) const {
  for (size_t i = 0; i < params.size(); ++i) {
    if (params[i].name == param) return static_cast<int>(i);
  }
  return -1;
}

ControlNode ControlNode::Apply(std::string table) {
  ControlNode node;
  node.kind = Kind::kApply;
  node.table = std::move(table);
  return node;
}

ControlNode ControlNode::IfFieldEq(FieldRef field, uint64_t value,
                                   std::vector<ControlNode> then_branch,
                                   std::vector<ControlNode> else_branch) {
  ControlNode node;
  node.kind = Kind::kConditional;
  node.pred = Pred::kFieldEq;
  node.cond_field = std::move(field);
  node.cond_value = value;
  node.then_branch = std::move(then_branch);
  node.else_branch = std::move(else_branch);
  return node;
}

ControlNode ControlNode::IfHeaderValid(std::string header,
                                       std::vector<ControlNode> then_branch,
                                       std::vector<ControlNode> else_branch) {
  ControlNode node;
  node.kind = Kind::kConditional;
  node.pred = Pred::kHeaderValid;
  node.cond_header = std::move(header);
  node.then_branch = std::move(then_branch);
  node.else_branch = std::move(else_branch);
  return node;
}

const HeaderType* P4Program::FindHeader(std::string_view name) const {
  for (const HeaderType& h : headers) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const Table* P4Program::FindTable(std::string_view name) const {
  for (const Table& t : tables) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

const Action* P4Program::FindAction(std::string_view name) const {
  for (const Action& a : actions) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

const Digest* P4Program::FindDigest(std::string_view name) const {
  for (const Digest& d : digests) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

const ParserState* P4Program::FindParserState(std::string_view name) const {
  for (const ParserState& s : parser) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Result<int> P4Program::FieldWidth(const FieldRef& ref) const {
  size_t dot = ref.text.find('.');
  if (dot == std::string::npos) {
    return InvalidArgument("malformed field reference '" + ref.text + "'");
  }
  std::string space = ref.text.substr(0, dot);
  std::string field = ref.text.substr(dot + 1);
  if (space == "standard") {
    if (field == "ingress_port" || field == "egress_port" ||
        field == "mcast_grp") {
      return kStandardFieldWidth;
    }
    return NotFound("unknown standard metadata field '" + field + "'");
  }
  if (space == "meta") {
    for (const P4Field& f : metadata) {
      if (f.name == field) return f.width;
    }
    return NotFound("unknown metadata field '" + field + "'");
  }
  const HeaderType* header = FindHeader(space);
  if (header == nullptr) return NotFound("unknown header '" + space + "'");
  int index = header->FindField(field);
  if (index < 0) {
    return NotFound(StrFormat("no field '%s' in header '%s'", field.c_str(),
                              space.c_str()));
  }
  return header->fields[static_cast<size_t>(index)].width;
}

namespace {

Status ValidateControl(const P4Program& program,
                       const std::vector<ControlNode>& nodes) {
  for (const ControlNode& node : nodes) {
    if (node.kind == ControlNode::Kind::kApply) {
      if (program.FindTable(node.table) == nullptr) {
        return NotFound("control applies unknown table '" + node.table + "'");
      }
    } else {
      if (node.pred == ControlNode::Pred::kFieldEq ||
          node.pred == ControlNode::Pred::kFieldNe) {
        NERPA_RETURN_IF_ERROR(program.FieldWidth(node.cond_field).status());
      } else if (program.FindHeader(node.cond_header) == nullptr) {
        return NotFound("condition on unknown header '" + node.cond_header +
                        "'");
      }
      NERPA_RETURN_IF_ERROR(ValidateControl(program, node.then_branch));
      NERPA_RETURN_IF_ERROR(ValidateControl(program, node.else_branch));
    }
  }
  return Status::Ok();
}

}  // namespace

Status P4Program::Validate() {
  for (const HeaderType& header : headers) {
    for (const P4Field& field : header.fields) {
      if (field.width < 1 || field.width > 64) {
        return ConstraintError(StrFormat("field %s.%s width %d out of range",
                                         header.name.c_str(),
                                         field.name.c_str(), field.width));
      }
    }
  }
  if (parser.empty()) return ConstraintError("parser has no states");
  for (const ParserState& state : parser) {
    if (!state.extracts.empty() && FindHeader(state.extracts) == nullptr) {
      return NotFound("parser extracts unknown header '" + state.extracts +
                      "'");
    }
    if (!state.select.text.empty()) {
      NERPA_RETURN_IF_ERROR(FieldWidth(state.select).status());
    }
    for (const ParserState::Transition& t : state.transitions) {
      if (t.next != "accept" && t.next != "reject" &&
          FindParserState(t.next) == nullptr) {
        return NotFound("parser transition to unknown state '" + t.next + "'");
      }
    }
  }
  for (const Action& action : actions) {
    for (const ActionOp& op : action.ops) {
      if (!op.param.empty() && action.FindParam(op.param) < 0) {
        return NotFound(StrFormat("action %s uses unknown parameter '%s'",
                                  action.name.c_str(), op.param.c_str()));
      }
      switch (op.kind) {
        case ActionOp::Kind::kSetFieldConst:
        case ActionOp::Kind::kSetFieldParam:
          NERPA_RETURN_IF_ERROR(FieldWidth(op.dest).status());
          break;
        case ActionOp::Kind::kCopyField:
          NERPA_RETURN_IF_ERROR(FieldWidth(op.dest).status());
          NERPA_RETURN_IF_ERROR(FieldWidth(op.src).status());
          break;
        case ActionOp::Kind::kDigest:
          if (FindDigest(op.digest_name) == nullptr) {
            return NotFound("action emits unknown digest '" + op.digest_name +
                            "'");
          }
          break;
        default:
          break;
      }
    }
  }
  for (Table& table : tables) {
    for (TableKey& key : table.keys) {
      NERPA_ASSIGN_OR_RETURN(key.width, FieldWidth(key.field));
    }
    for (const std::string& action : table.actions) {
      if (FindAction(action) == nullptr) {
        return NotFound(StrFormat("table %s permits unknown action '%s'",
                                  table.name.c_str(), action.c_str()));
      }
    }
    if (!table.default_action.empty()) {
      const Action* action = FindAction(table.default_action);
      if (action == nullptr) {
        return NotFound("unknown default action '" + table.default_action +
                        "'");
      }
      if (table.default_action_args.size() != action->params.size()) {
        return ConstraintError(StrFormat(
            "default action %s of table %s needs %zu arguments, got %zu",
            action->name.c_str(), table.name.c_str(), action->params.size(),
            table.default_action_args.size()));
      }
    }
  }
  for (const std::string& header : deparser) {
    if (FindHeader(header) == nullptr) {
      return NotFound("deparser emits unknown header '" + header + "'");
    }
  }
  NERPA_RETURN_IF_ERROR(ValidateControl(*this, ingress));
  NERPA_RETURN_IF_ERROR(ValidateControl(*this, egress));
  return Status::Ok();
}

std::string P4Program::ToString() const {
  std::string out = "// P4 program: " + name + "\n";
  for (const HeaderType& header : headers) {
    out += "header " + header.name + " {\n";
    for (const P4Field& field : header.fields) {
      out += StrFormat("  bit<%d> %s;\n", field.width, field.name.c_str());
    }
    out += "}\n";
  }
  if (!metadata.empty()) {
    out += "struct metadata {\n";
    for (const P4Field& field : metadata) {
      out += StrFormat("  bit<%d> %s;\n", field.width, field.name.c_str());
    }
    out += "}\n";
  }
  for (const Digest& digest : digests) {
    out += "digest " + digest.name + " {";
    for (size_t i = 0; i < digest.fields.size(); ++i) {
      if (i > 0) out += ", ";
      out += StrFormat("bit<%d> %s", digest.fields[i].width,
                       digest.fields[i].name.c_str());
    }
    out += "}\n";
  }
  for (const Table& table : tables) {
    out += "table " + table.name + " {\n  key = {";
    for (size_t i = 0; i < table.keys.size(); ++i) {
      if (i > 0) out += "; ";
      out += table.keys[i].field.text + ": " +
             MatchKindName(table.keys[i].kind);
    }
    out += "}\n  actions = {";
    for (size_t i = 0; i < table.actions.size(); ++i) {
      if (i > 0) out += ", ";
      out += table.actions[i];
    }
    out += "}\n";
    if (!table.default_action.empty()) {
      out += "  default_action = " + table.default_action + ";\n";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace nerpa::p4
