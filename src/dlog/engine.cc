#include "dlog/engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <functional>
#include <thread>

#include "common/hash.h"
#include "common/log.h"
#include "common/strings.h"
#include "dlog/eval.h"

namespace nerpa::dlog {

bool TxnDelta::empty() const {
  for (const auto& [name, delta] : outputs) {
    if (!delta.empty()) return false;
  }
  return true;
}

std::string TxnDelta::ToString() const {
  std::string out;
  for (const auto& [name, delta] : outputs) {
    for (const auto& [row, weight] : delta) {
      out += StrFormat("%s %s%s\n", weight > 0 ? "+" : "-", name.c_str(),
                       RowToString(row).c_str());
    }
  }
  return out;
}

namespace {

/// Lexicographic row order (used for deterministic output deltas).
bool RowLess(const Row& a, const Row& b) { return a < b; }

}  // namespace

// ---------------------------------------------------------------------------
// Transaction processor.
// ---------------------------------------------------------------------------

class Engine::Txn {
 public:
  /// Which snapshot of a relation a lookup reads.
  enum class Mode { kOld, kNew };

  /// Overlay for relations inside the recursive stratum being processed:
  /// rows in `removed` (unless also in `removed_except`) are hidden, rows in
  /// `added` are visible.  The base is always the pre-fold state.
  struct RelOverlay {
    const RowSet* removed = nullptr;
    const RowSet* removed_except = nullptr;
    const RowSet* added = nullptr;
    // Per-arrangement index of `added` rows (parallel to the relation's
    // arrangement list).
    const std::vector<std::unordered_map<Row, std::vector<Row>, RowHash,
                                         RowEq>>* added_index = nullptr;
  };
  using Overlay = std::unordered_map<int, RelOverlay>;

  explicit Txn(Engine* engine)
      : e_(*engine), program_(*engine->program_) {
    // Pre-size the per-step-depth scratch buffers to the deepest rule body,
    // so recursive ExecSteps frames can hold references into them without
    // any resize invalidating an outer frame's buffer.
    size_t max_steps = 1;
    for (const CompiledRule& rule : program_.rules()) {
      max_steps = std::max(max_steps, rule.steps.size());
    }
    key_buffers_.resize(max_steps);
    trail_buffers_.resize(max_steps);
  }

  Result<TxnDelta> Run(bool is_init) {
    is_init_ = is_init;
    overlay_ = nullptr;
    if (e_.options_.enable_bootstrap && EngineIsEmpty()) {
      return RunBootstrap();
    }
    Status status = Execute();
    if (!status.ok()) {
      // Failed Commit() contract: undo every partial effect so the engine
      // is byte-identical to its pre-transaction state.
      Rollback();
      Cleanup();
      FlushCounters();
      return status;
    }
    TxnDelta out = CollectOutputs();
    ResetLogs();
    Cleanup();
    FlushCounters();
    ++e_.transactions_;
    return out;
  }

  /// Linear pass over a relation's contents inserting every row into every
  /// arrangement index (bulk build: reserve once, no flip/deleted
  /// recording).  Used by the bootstrap fold and checkpoint restore.
  void BuildArrangements(int rel) {
    if (!e_.options_.use_arrangements) return;
    RelState& state = e_.relations_[static_cast<size_t>(rel)];
    const auto& specs = program_.arrangements()[static_cast<size_t>(rel)];
    for (size_t a = 0; a < specs.size(); ++a) {
      const std::vector<int>& positions = specs[a].key_positions;
      Arrangement& arr = state.arrangements[a];
      arr.index.reserve(state.counts.size());
      for (const auto& [row, count] : state.counts) {
        RowView key = ProjectInto(row, positions, arr_key_buf_);
        auto it = arr.index.find(key);
        if (it == arr.index.end()) {
          ++c_.key_rows_materialized;
          it = arr.index.emplace(MaterializeKey(key), RowSet{}).first;
        }
        it->second.insert(row);
      }
    }
  }

  /// Merges transaction-local hot-path counters into the engine totals.
  /// Called single-threaded: at the end of Run() for the main transaction,
  /// and after the pool barrier for bootstrap workers.
  void FlushCounters() {
    e_.rule_firings_ += c_.rule_firings;
    e_.probes_ += c_.probes;
    e_.probe_hits_ += c_.probe_hits;
    e_.scans_ += c_.scans;
    e_.key_rows_materialized_ += c_.key_rows_materialized;
    e_.key_allocs_saved_ += c_.key_allocs_saved;
    c_ = Counters{};
  }

 private:
  Status Execute() {
    NERPA_RETURN_IF_ERROR(ApplyInputs());
    for (const Stratum& stratum : program_.strata()) {
      if (stratum.recursive) {
        NERPA_RETURN_IF_ERROR(ProcessRecursive(stratum));
      } else {
        NERPA_RETURN_IF_ERROR(ProcessNonRecursive(stratum));
      }
    }
    return Status::Ok();
  }

  /// Replays the undo logs in reverse through the same fold functions (with
  /// logging disabled), restoring derivation counts, arrangements, and
  /// aggregation state exactly.
  /// Empties the undo logs, returning outsized capacity (the Txn persists
  /// across transactions, so capacity follows the typical delta size).
  void ResetLogs() {
    if (fold_log_.capacity() > 65536) {
      std::vector<FoldRecord>{}.swap(fold_log_);
    } else {
      fold_log_.clear();
    }
    if (agg_log_.capacity() > 65536) {
      std::vector<AggRecord>{}.swap(agg_log_);
    } else {
      agg_log_.clear();
    }
  }

  void Rollback() {
    overlay_ = nullptr;
    rolling_back_ = true;
    for (auto it = agg_log_.rbegin(); it != agg_log_.rend(); ++it) {
      AggState& state = e_.agg_states_[static_cast<size_t>(it->state_index)];
      ZSet& group = state.groups[it->group];
      int64_t& count = group[it->binding];
      count -= it->weight;
      if (count == 0) group.erase(it->binding);
      if (group.empty()) state.groups.erase(it->group);
    }
    agg_log_.clear();
    for (auto it = fold_log_.rbegin(); it != fold_log_.rend(); ++it) {
      if (it->set_level) {
        FoldSetDelta(it->rel,
                     {{it->row, static_cast<int>(-it->weight)}});
      } else {
        ZSet inverse;
        inverse.emplace(it->row, -it->weight);
        // LIFO replay walks each count back along the path it came, so
        // every intermediate value is the (non-negative) original.
        Status s = FoldCountDelta(it->rel, inverse);
        assert(s.ok());
        (void)s;
      }
    }
    fold_log_.clear();
    rolling_back_ = false;
  }

  // --- Folding deltas into relation state ---

  /// Marks `rel` as touched this transaction so Cleanup() and rollback
  /// only visit relations proportional to the change.
  void MarkDirty(int rel) {
    RelState& state = e_.relations_[static_cast<size_t>(rel)];
    if (!state.dirty) {
      state.dirty = true;
      dirty_rels_.push_back(rel);
    }
  }

  /// Projects `row`'s arrangement key into a reusable scratch buffer;
  /// returns a borrowed view (no heap allocation).
  static RowView ProjectInto(const Row& row, const std::vector<int>& positions,
                             ValueVec& buf) {
    buf.clear();
    for (int p : positions) buf.push_back(row[static_cast<size_t>(p)]);
    return RowView(buf.data(), buf.size());
  }

  static Row MaterializeKey(RowView key) {
    return Row(key.data(), key.size());
  }

  void BumpFlip(Arrangement& arr, RowView key, int direction) {
    auto it = arr.flips.find(key);
    if (it == arr.flips.end()) {
      ++c_.key_rows_materialized;
      arr.flips.emplace(MaterializeKey(key), direction);
      return;
    }
    it->second += direction;
    if (it->second == 0) arr.flips.erase(it);
  }

  /// One presence transition per entry; rows borrowed from the caller.
  using ArrDelta = std::vector<std::pair<const Row*, int>>;

  /// Batched index maintenance: applies a whole transition batch to each
  /// arrangement in turn (one spec/arrangement fetch per batch instead of
  /// per row), recording presence flips and per-key deletions.  Probe keys
  /// are assembled in a scratch buffer; a key Row is materialized only
  /// when a bucket is created (or first recorded in flips/deleted).
  void ApplyArrangementDelta(int rel, const ArrDelta& delta) {
    if (!e_.options_.use_arrangements || delta.empty()) return;
    RelState& state = e_.relations_[static_cast<size_t>(rel)];
    const auto& specs = program_.arrangements()[static_cast<size_t>(rel)];
    for (size_t a = 0; a < specs.size(); ++a) {
      const std::vector<int>& positions = specs[a].key_positions;
      Arrangement& arr = state.arrangements[a];
      for (const auto& [row, direction] : delta) {
        RowView key = ProjectInto(*row, positions, arr_key_buf_);
        if (direction > 0) {
          auto it = arr.index.find(key);
          if (it == arr.index.end()) {
            ++c_.key_rows_materialized;
            it = arr.index.emplace(MaterializeKey(key), RowSet{}).first;
            BumpFlip(arr, key, +1);
          }
          it->second.insert(*row);
        } else {
          auto it = arr.index.find(key);
          if (it == arr.index.end()) continue;
          it->second.erase(*row);
          auto del = arr.deleted.find(key);
          if (del == arr.deleted.end()) {
            ++c_.key_rows_materialized;
            del = arr.deleted.emplace(MaterializeKey(key),
                                      std::vector<Row>{}).first;
          }
          del->second.push_back(*row);
          if (it->second.empty()) {
            arr.index.erase(it);
            BumpFlip(arr, key, -1);
          }
        }
      }
    }
  }

  /// Applies a set-level delta (rows with +-1) to `rel`: counts are forced
  /// to 1/absent.  Used for inputs and recursive-stratum relations.
  void FoldSetDelta(int rel, const std::vector<std::pair<Row, int>>& delta) {
    if (delta.empty()) return;
    MarkDirty(rel);
    RelState& state = e_.relations_[static_cast<size_t>(rel)];
    ArrDelta arr_delta;
    arr_delta.reserve(delta.size());
    for (const auto& [row, direction] : delta) {
      if (direction > 0) {
        state.counts[row] = 1;
      } else {
        state.counts.erase(row);
        state.txn_deleted.push_back(row);
      }
      arr_delta.emplace_back(&row, direction);
      int64_t& d = state.set_delta[row];
      d += direction;
      if (d == 0) state.set_delta.erase(row);
      if (!rolling_back_) {
        fold_log_.push_back(FoldRecord{rel, row, direction, /*set_level=*/true});
      }
    }
    ApplyArrangementDelta(rel, arr_delta);
  }

  /// Applies a derivation-count delta to `rel`, deriving the set-level
  /// transitions.  Used for non-recursive derived relations.
  Status FoldCountDelta(int rel, const ZSet& count_delta) {
    if (count_delta.empty()) return Status::Ok();
    MarkDirty(rel);
    RelState& state = e_.relations_[static_cast<size_t>(rel)];
    if (!rolling_back_) fold_log_.reserve(fold_log_.size() + count_delta.size());
    ArrDelta transitions;  // rows borrowed from count_delta (stable)
    for (const auto& [row, weight] : count_delta) {
      if (weight == 0) continue;
      // Single hash lookup per row: insert-or-find, then adjust in place.
      auto [it, inserted] = state.counts.try_emplace(row, 0);
      int64_t old_count = inserted ? 0 : it->second;
      int64_t new_count = old_count + weight;
      if (new_count < 0) {
        if (inserted) state.counts.erase(it);
        ApplyArrangementDelta(rel, transitions);  // keep state coherent
        return Internal(StrFormat(
            "negative derivation count for %s in relation '%s'",
            RowToString(row).c_str(),
            program_.relation(rel).name.c_str()));
      }
      if (new_count == 0) {
        state.counts.erase(it);
      } else {
        it->second = new_count;
      }
      if (!rolling_back_) {
        fold_log_.push_back(FoldRecord{rel, row, weight, /*set_level=*/false});
      }
      if (old_count == 0 && new_count > 0) {
        transitions.emplace_back(&row, +1);
        int64_t& d = state.set_delta[row];
        if (++d == 0) state.set_delta.erase(row);
      } else if (old_count > 0 && new_count == 0) {
        transitions.emplace_back(&row, -1);
        state.txn_deleted.push_back(row);
        int64_t& d = state.set_delta[row];
        if (--d == 0) state.set_delta.erase(row);
      }
    }
    ApplyArrangementDelta(rel, transitions);
    return Status::Ok();
  }

  // --- Reading relations (old/new + overlay) ---

  const RelOverlay* FindOverlay(int rel) const {
    if (overlay_ == nullptr) return nullptr;
    auto it = overlay_->find(rel);
    return it == overlay_->end() ? nullptr : &it->second;
  }

  static bool OverlayHides(const RelOverlay& ov, const Row& row) {
    if (ov.removed != nullptr && ov.removed->count(row) != 0) {
      return !(ov.removed_except != nullptr &&
               ov.removed_except->count(row) != 0);
    }
    return false;
  }

  /// Invokes `fn(row)` for every row of `rel` matching `key` under the
  /// given arrangement, mode and the active overlay.  `key` is a borrowed
  /// view (scratch buffer or a Row's span) — probes never materialize a
  /// key Row.  `fn` returns false to stop early; ForEachMatch then returns
  /// false.
  template <typename Fn>
  bool ForEachMatch(int rel, int arrangement, RowView key, Mode mode,
                    Fn&& fn) {
    RelState& state = e_.relations_[static_cast<size_t>(rel)];
    const RelOverlay* ov = FindOverlay(rel);
    // OLD-mode reads must skip rows inserted this transaction; hoist the
    // (common) no-delta case so clean relations pay no per-row lookup.
    const ZSet* txn_inserted =
        mode == Mode::kOld && !state.set_delta.empty() ? &state.set_delta
                                                       : nullptr;
    if (arrangement >= 0 && !e_.options_.use_arrangements) {
      ++c_.scans;
      // Ablation mode: scan and filter by the arrangement's key positions.
      const auto& positions =
          program_.arrangements()[static_cast<size_t>(rel)]
                                 [static_cast<size_t>(arrangement)]
                                     .key_positions;
      auto matches_key = [&](const Row& row) {
        for (size_t k = 0; k < positions.size(); ++k) {
          if (!(row[static_cast<size_t>(positions[k])] == key[k])) {
            return false;
          }
        }
        return true;
      };
      for (const auto& [row, count] : state.counts) {
        if (ov != nullptr && OverlayHides(*ov, row)) continue;
        if (txn_inserted != nullptr) {
          auto d = txn_inserted->find(row);
          if (d != txn_inserted->end() && d->second > 0) continue;
        }
        if (matches_key(row) && !fn(row)) return false;
      }
      if (mode == Mode::kOld) {
        for (const Row& row : state.txn_deleted) {
          if (matches_key(row) && !fn(row)) return false;
        }
      }
      if (ov != nullptr && ov->added != nullptr) {
        for (const Row& row : *ov->added) {
          if (matches_key(row) && !fn(row)) return false;
        }
      }
      return true;
    }
    if (arrangement >= 0) {
      ++c_.probes;
      ++c_.key_allocs_saved;
      Arrangement& arr = state.arrangements[static_cast<size_t>(arrangement)];
      auto bucket = arr.index.find(key);
      if (bucket != arr.index.end()) {
        ++c_.probe_hits;
        for (const Row& row : bucket->second) {
          if (ov != nullptr && OverlayHides(*ov, row)) continue;
          if (txn_inserted != nullptr) {
            auto d = txn_inserted->find(row);
            if (d != txn_inserted->end() && d->second > 0) continue;
          }
          if (!fn(row)) return false;
        }
      }
      if (mode == Mode::kOld) {
        auto deleted = arr.deleted.find(key);
        if (deleted != arr.deleted.end()) {
          for (const Row& row : deleted->second) {
            if (!fn(row)) return false;
          }
        }
      }
      if (ov != nullptr && ov->added_index != nullptr) {
        const auto& added_arr =
            (*ov->added_index)[static_cast<size_t>(arrangement)];
        auto added = added_arr.find(key);
        if (added != added_arr.end()) {
          for (const Row& row : added->second) {
            if (!fn(row)) return false;
          }
        }
      }
      return true;
    }
    // Full scan.
    ++c_.scans;
    for (const auto& [row, count] : state.counts) {
      if (ov != nullptr && OverlayHides(*ov, row)) continue;
      if (txn_inserted != nullptr) {
        auto d = txn_inserted->find(row);
        if (d != txn_inserted->end() && d->second > 0) continue;
      }
      if (!fn(row)) return false;
    }
    if (mode == Mode::kOld) {
      for (const Row& row : state.txn_deleted) {
        if (!fn(row)) return false;
      }
    }
    if (ov != nullptr && ov->added != nullptr) {
      for (const Row& row : *ov->added) {
        if (!fn(row)) return false;
      }
    }
    return true;
  }

  /// Presence test for negation: does any row of `rel` match `key`?
  bool AnyMatch(int rel, int arrangement, RowView key, Mode mode) {
    bool found = false;
    ForEachMatch(rel, arrangement, key, mode, [&](const Row&) {
      found = true;
      return false;
    });
    return found;
  }

  /// Set-level membership test under mode + overlay.
  bool ContainsRow(int rel, const Row& row, Mode mode) {
    RelState& state = e_.relations_[static_cast<size_t>(rel)];
    const RelOverlay* ov = FindOverlay(rel);
    if (ov != nullptr) {
      if (ov->added != nullptr && ov->added->count(row) != 0) return true;
      if (OverlayHides(*ov, row)) return false;
    }
    bool present_new = state.counts.count(row) != 0;
    if (mode == Mode::kNew) return present_new;
    auto d = state.set_delta.find(row);
    if (d == state.set_delta.end()) return present_new;
    return d->second < 0;  // deleted this txn => was present before
  }

  // --- The join executor ---

  /// Binds `row` against `terms`, returning false on mismatch.  Newly bound
  /// slots are appended to `trail` for later unbinding.
  bool MatchTerms(const std::vector<TermPlan>& terms, const Row& row,
                  std::vector<int>& trail) {
    for (size_t p = 0; p < terms.size(); ++p) {
      const TermPlan& term = terms[p];
      switch (term.kind) {
        case TermPlan::Kind::kIgnore:
          break;
        case TermPlan::Kind::kCheckConst:
          if (!(row[p] == term.constant)) return false;
          break;
        case TermPlan::Kind::kBind:
        case TermPlan::Kind::kCheckVar: {
          size_t slot = static_cast<size_t>(term.slot);
          // Affine head terms (bigint only): slot value = row value - offset.
          Value value = term.offset == 0
                            ? row[p]
                            : Value::Int(row[p].as_int() - term.offset);
          if (bound_[slot]) {
            if (!(frame_[slot] == value)) return false;
          } else {
            frame_[slot] = std::move(value);
            bound_[slot] = 1;
            trail.push_back(term.slot);
          }
          break;
        }
      }
    }
    return true;
  }

  void Unbind(const std::vector<int>& trail, size_t from) {
    for (size_t i = from; i < trail.size(); ++i) {
      bound_[static_cast<size_t>(trail[i])] = 0;
    }
  }

  /// Assembles the lookup key for a literal from currently bound slots
  /// into a per-step scratch buffer (reused across probes; keys stay alive
  /// through deeper recursion because each step depth owns its buffer).
  RowView BuildKey(const StepPlan& step, const std::vector<int>& positions,
                   size_t step_index) {
    if (key_buffers_.size() <= step_index) {
      key_buffers_.resize(step_index + 1);
    }
    ValueVec& buf = key_buffers_[step_index];
    buf.clear();
    for (int p : positions) {
      const TermPlan& term = step.terms[static_cast<size_t>(p)];
      if (term.kind == TermPlan::Kind::kCheckConst) {
        buf.push_back(term.constant);
      } else {
        buf.push_back(frame_[static_cast<size_t>(term.slot)]);
      }
    }
    return RowView(buf.data(), buf.size());
  }

  /// Context for one rule-body execution.
  struct Exec {
    const CompiledRule* rule = nullptr;
    const std::vector<LookupPlan>* lookups = nullptr;
    int skip_step = -1;   // pinned literal (already bound), or -1
    int pinned_step = -1; // for mode decisions in delta variants
    bool delta_modes = false;  // true: j<pinned NEW, j>pinned OLD
    Mode uniform_mode = Mode::kNew;  // used when !delta_modes
    bool stop_at_aggregate = false;
  };

  Mode StepMode(const Exec& exec, int step_index) const {
    if (!exec.delta_modes) return exec.uniform_mode;
    return step_index < exec.pinned_step ? Mode::kNew : Mode::kOld;
  }

  /// Recursively executes body steps from `step_index` on; `lookup_index`
  /// tracks the position in exec.lookups.  Sink(frame) is called for each
  /// satisfying assignment (at the aggregate step when stop_at_aggregate).
  template <typename Sink>
  Status ExecSteps(const Exec& exec, size_t step_index, size_t lookup_index,
                   Sink&& sink) {
    const CompiledRule& rule = *exec.rule;
    if (step_index >= rule.steps.size()) {
      ++c_.rule_firings;
      return sink(frame_);
    }
    if (static_cast<int>(step_index) == exec.skip_step) {
      return ExecSteps(exec, step_index + 1, lookup_index,
                       std::forward<Sink>(sink));
    }
    const StepPlan& step = rule.steps[step_index];
    switch (step.kind) {
      case BodyElem::Kind::kLiteral: {
        const LookupPlan& lookup = (*exec.lookups)[lookup_index];
        assert(lookup.step_index == static_cast<int>(step_index));
        Mode mode = StepMode(exec, static_cast<int>(step_index));
        RowView key = BuildKey(step, lookup.key_positions, step_index);
        if (step.negated) {
          bool present;
          if (lookup.arrangement >= 0 || !lookup.key_positions.empty()) {
            present = AnyMatch(step.relation, lookup.arrangement, key, mode);
          } else {
            present = RelationNonEmpty(step.relation, mode);
          }
          if (present) return Status::Ok();  // antijoin: branch dies
          return ExecSteps(exec, step_index + 1, lookup_index + 1,
                           std::forward<Sink>(sink));
        }
        Status status = Status::Ok();
        // Per-depth trail scratch (pre-sized in the ctor): rebinding per
        // matched row never heap-allocates.
        std::vector<int>& trail = trail_buffers_[step_index];
        ForEachMatch(step.relation, lookup.arrangement, key, mode,
                     [&](const Row& row) {
                       trail.clear();
                       if (MatchTerms(step.terms, row, trail)) {
                         Status s =
                             ExecSteps(exec, step_index + 1, lookup_index + 1,
                                       sink);
                         if (!s.ok()) {
                           status = s;
                           Unbind(trail, 0);
                           return false;
                         }
                       }
                       Unbind(trail, 0);
                       return true;
                     });
        return status;
      }
      case BodyElem::Kind::kCondition: {
        NERPA_ASSIGN_OR_RETURN(Value v, EvalExpr(*step.condition, frame_));
        if (!v.as_bool()) return Status::Ok();
        return ExecSteps(exec, step_index + 1, lookup_index,
                         std::forward<Sink>(sink));
      }
      case BodyElem::Kind::kAssignment: {
        NERPA_ASSIGN_OR_RETURN(Value v, EvalExpr(*step.expr, frame_));
        size_t slot = static_cast<size_t>(step.slot);
        frame_[slot] = std::move(v);
        bound_[slot] = 1;
        Status s = ExecSteps(exec, step_index + 1, lookup_index,
                             std::forward<Sink>(sink));
        bound_[slot] = 0;
        return s;
      }
      case BodyElem::Kind::kFlatMap: {
        NERPA_ASSIGN_OR_RETURN(Value v, EvalExpr(*step.expr, frame_));
        size_t slot = static_cast<size_t>(step.slot);
        for (const Value& elem : v.as_tuple()) {
          frame_[slot] = elem;
          bound_[slot] = 1;
          Status s = ExecSteps(exec, step_index + 1, lookup_index, sink);
          bound_[slot] = 0;
          NERPA_RETURN_IF_ERROR(s);
        }
        return Status::Ok();
      }
      case BodyElem::Kind::kAggregate: {
        if (exec.stop_at_aggregate) {
          ++c_.rule_firings;
          return sink(frame_);
        }
        return Internal("aggregate reached in non-aggregate execution");
      }
    }
    return Internal("bad step kind");
  }

  bool RelationNonEmpty(int rel, Mode mode) {
    RelState& state = e_.relations_[static_cast<size_t>(rel)];
    const RelOverlay* ov = FindOverlay(rel);
    if (mode == Mode::kNew && ov == nullptr) return !state.counts.empty();
    // Rare path: count visible rows until one is found.
    bool found = false;
    ForEachMatch(rel, -1, RowView{}, mode, [&](const Row&) {
      found = true;
      return false;
    });
    return found;
  }

  /// Prepares the frame for `rule` and runs `body(trail)`.
  template <typename Body>
  Status WithFrame(const CompiledRule& rule, Body&& body) {
    frame_.assign(static_cast<size_t>(rule.frame_size), Value());
    bound_.assign(static_cast<size_t>(rule.frame_size), 0);
    return body();
  }

  /// Evaluates the head expressions into a row.  All-bare-variable heads
  /// (the common case) gather straight from frame slots — no expression
  /// evaluation on the emit hot path.
  Result<Row> HeadRow(const CompiledRule& rule) {
    Row row;
    if (rule.head_all_vars) {
      row.reserve(rule.head_var_slots.size());
      for (int slot : rule.head_var_slots) {
        row.push_back(frame_[static_cast<size_t>(slot)]);
      }
      return row;
    }
    row.reserve(rule.head_exprs.size());
    for (const ExprPtr& expr : rule.head_exprs) {
      NERPA_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, frame_));
      row.push_back(std::move(v));
    }
    return row;
  }

  // --- Delta-plan driving ---

  bool RuleHasPositiveLiteral(const CompiledRule& rule) const {
    for (const StepPlan& step : rule.steps) {
      if (step.kind == BodyElem::Kind::kLiteral && !step.negated) return true;
    }
    return false;
  }

  /// Runs one delta variant of `rule` for every pinned change, feeding
  /// (frame, weight) pairs into `sink`.
  template <typename Sink>
  Status ProcessDeltaPlan(const CompiledRule& rule, const DeltaPlan& plan,
                          bool stop_at_aggregate, Sink&& sink) {
    const StepPlan& pinned =
        rule.steps[static_cast<size_t>(plan.pinned_step)];
    Exec exec;
    exec.rule = &rule;
    exec.lookups = &plan.lookups;
    exec.skip_step = plan.pinned_step;
    exec.pinned_step = plan.pinned_step;
    exec.delta_modes = true;
    exec.stop_at_aggregate = stop_at_aggregate;

    RelState& pinned_state =
        e_.relations_[static_cast<size_t>(pinned.relation)];
    if (!pinned.negated) {
      if (pinned_state.set_delta.empty()) return Status::Ok();
      // Copy: sinks may fold into unrelated relations, never this one, but
      // iterate a copy anyway to stay safe under rehash.
      std::vector<std::pair<Row, int64_t>> changes(
          pinned_state.set_delta.begin(), pinned_state.set_delta.end());
      for (const auto& [row, weight] : changes) {
        NERPA_RETURN_IF_ERROR(WithFrame(rule, [&]() -> Status {
          std::vector<int> trail;
          if (!MatchTerms(pinned.terms, row, trail)) return Status::Ok();
          int64_t w = weight;
          return ExecSteps(exec, 0, 0, [&](std::vector<Value>&) {
            return sink(w);
          });
        }));
      }
      return Status::Ok();
    }
    // Pinned negated literal: driven by presence flips of its key.
    if (plan.pinned_arrangement >= 0) {
      Arrangement& arr =
          pinned_state.arrangements[static_cast<size_t>(
              plan.pinned_arrangement)];
      if (arr.flips.empty()) return Status::Ok();
      std::vector<std::pair<Row, int>> flips(arr.flips.begin(),
                                             arr.flips.end());
      // Key positions, sorted, matching arrangement key construction.
      const auto& spec = program_.arrangements()[static_cast<size_t>(
          pinned.relation)][static_cast<size_t>(plan.pinned_arrangement)];
      for (const auto& [key, flip] : flips) {
        NERPA_RETURN_IF_ERROR(WithFrame(rule, [&]() -> Status {
          std::vector<int> trail;
          // Bind pinned terms from the key.
          for (size_t k = 0; k < spec.key_positions.size(); ++k) {
            const TermPlan& term =
                pinned.terms[static_cast<size_t>(spec.key_positions[k])];
            if (term.kind == TermPlan::Kind::kCheckConst) {
              if (!(key[k] == term.constant)) return Status::Ok();
            } else {
              size_t slot = static_cast<size_t>(term.slot);
              if (bound_[slot]) {
                if (!(frame_[slot] == key[k])) return Status::Ok();
              } else {
                frame_[slot] = key[k];
                bound_[slot] = 1;
                trail.push_back(term.slot);
              }
            }
          }
          int64_t w = -flip;  // key became present => derivations vanish
          return ExecSteps(exec, 0, 0, [&](std::vector<Value>&) {
            return sink(w);
          });
        }));
      }
      return Status::Ok();
    }
    // Negated literal with an empty key: whole-relation emptiness flip.
    bool old_nonempty;
    {
      size_t inserted = 0, deleted = 0;
      for (const auto& [row, d] : pinned_state.set_delta) {
        if (d > 0) ++inserted;
        else ++deleted;
      }
      old_nonempty =
          pinned_state.counts.size() + deleted - inserted > 0;
    }
    bool new_nonempty = !pinned_state.counts.empty();
    if (old_nonempty == new_nonempty) return Status::Ok();
    int64_t w = new_nonempty ? -1 : +1;
    return WithFrame(rule, [&]() -> Status {
      return ExecSteps(exec, 0, 0, [&](std::vector<Value>&) {
        return sink(w);
      });
    });
  }

  /// Full evaluation of `rule` in original order (init-time rules without
  /// positive literals; weight +1), mode = OLD per the implicit-TRUE-literal
  /// delta expansion.
  template <typename Sink>
  Status ProcessInitFull(const CompiledRule& rule, bool stop_at_aggregate,
                         Sink&& sink) {
    Exec exec;
    exec.rule = &rule;
    exec.lookups = &rule.full_plan.lookups;
    exec.delta_modes = false;
    exec.uniform_mode = Mode::kOld;
    exec.stop_at_aggregate = stop_at_aggregate;
    return WithFrame(rule, [&]() -> Status {
      return ExecSteps(exec, 0, 0, [&](std::vector<Value>&) {
        return sink(int64_t{1});
      });
    });
  }

  // --- Aggregation ---

  Row CollectSlots(const std::vector<int>& slots) {
    Row out;
    out.reserve(slots.size());
    for (int slot : slots) out.push_back(frame_[static_cast<size_t>(slot)]);
    return out;
  }

  /// Aggregate result over a group's current (count > 0) binding rows; the
  /// aggregate argument value is the last element of each binding row.
  std::optional<Value> ComputeAgg(const StepPlan& step, const ZSet& group) {
    if (group.empty()) return std::nullopt;
    switch (step.agg_func) {
      case AggFunc::kCount:
        return Value::Int(static_cast<int64_t>(group.size()));
      case AggFunc::kSum: {
        int64_t total = 0;
        bool is_bit = step.result_type.kind == Type::Kind::kBit;
        for (const auto& [binding, count] : group) {
          total += binding.back().NumericAsInt();
        }
        return is_bit ? Value::Bit(step.result_type.MaskBits(
                            static_cast<uint64_t>(total)))
                      : Value::Int(total);
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        std::optional<Value> best;
        for (const auto& [binding, count] : group) {
          const Value& v = binding.back();
          if (!best) {
            best = v;
          } else if (step.agg_func == AggFunc::kMin ? v < *best : *best < v) {
            best = v;
          }
        }
        return best;
      }
    }
    return std::nullopt;
  }

  /// Processes one aggregate rule: collects binding deltas via its delta
  /// plans (plus init full eval), updates the persistent group state, and
  /// emits head count deltas for dirty groups.
  Status ProcessAggRule(const CompiledRule& rule, ZSet& head_delta) {
    const StepPlan& agg =
        rule.steps[static_cast<size_t>(rule.aggregate_step)];
    // group key -> (binding row -> weight)
    std::unordered_map<Row, ZSet, RowHash, RowEq> collected;

    auto collect = [&](int64_t weight) -> Status {
      Row group = CollectSlots(agg.group_slots);
      Row binding = CollectSlots(agg.binding_slots);
      NERPA_ASSIGN_OR_RETURN(Value arg, EvalExpr(*agg.agg_arg, frame_));
      binding.push_back(std::move(arg));
      ZSet& bucket = collected[group];
      int64_t& w = bucket[binding];
      w += weight;
      if (w == 0) bucket.erase(binding);
      return Status::Ok();
    };

    if (is_init_ && !RuleHasPositiveLiteral(rule)) {
      NERPA_RETURN_IF_ERROR(
          ProcessInitFull(rule, /*stop_at_aggregate=*/true, collect));
    }
    for (const DeltaPlan& plan : rule.delta_plans) {
      NERPA_RETURN_IF_ERROR(
          ProcessDeltaPlan(rule, plan, /*stop_at_aggregate=*/true, collect));
    }
    if (collected.empty()) return Status::Ok();

    AggState& state =
        e_.agg_states_[static_cast<size_t>(agg.agg_state_index)];
    for (auto& [group, delta] : collected) {
      ZSet& group_state = state.groups[group];
      std::optional<Value> old_result = ComputeAgg(agg, group_state);
      for (const auto& [binding, weight] : delta) {
        int64_t& count = group_state[binding];
        count += weight;
        agg_log_.push_back(
            AggRecord{agg.agg_state_index, group, binding, weight});
        if (count < 0) {
          return Internal("negative aggregation support count");
        }
        if (count == 0) group_state.erase(binding);
      }
      std::optional<Value> new_result = ComputeAgg(agg, group_state);
      if (group_state.empty()) state.groups.erase(group);
      if (old_result == new_result) continue;
      // Emit head transitions with the group frame.
      frame_.assign(static_cast<size_t>(rule.frame_size), Value());
      bound_.assign(static_cast<size_t>(rule.frame_size), 0);
      for (size_t g = 0; g < agg.group_slots.size(); ++g) {
        size_t slot = static_cast<size_t>(agg.group_slots[g]);
        frame_[slot] = group[g];
        bound_[slot] = 1;
      }
      if (old_result) {
        frame_[static_cast<size_t>(agg.result_slot)] = *old_result;
        bound_[static_cast<size_t>(agg.result_slot)] = 1;
        NERPA_ASSIGN_OR_RETURN(Row row, HeadRow(rule));
        int64_t& w = head_delta[row];
        w -= 1;
        if (w == 0) head_delta.erase(row);
      }
      if (new_result) {
        frame_[static_cast<size_t>(agg.result_slot)] = *new_result;
        bound_[static_cast<size_t>(agg.result_slot)] = 1;
        NERPA_ASSIGN_OR_RETURN(Row row, HeadRow(rule));
        int64_t& w = head_delta[row];
        w += 1;
        if (w == 0) head_delta.erase(row);
      }
    }
    return Status::Ok();
  }

  // --- Stratum processing ---

  Status ProcessNonRecursive(const Stratum& stratum) {
    // Non-recursive SCCs contain exactly one relation.
    int head_rel = stratum.relations[0];
    // Scratch z-set reused across strata and transactions: steady-state
    // commits accumulate head rows with zero hash-table rehashes.  (A flat
    // stage-sort-net buffer was measured here and lost: sorting fat
    // (Row, weight) pairs costs more than warm hash buckets.)
    ZSet& head_delta = head_scratch_;
    head_delta.clear();
    for (int rule_index : stratum.rules) {
      const CompiledRule& rule =
          program_.rules()[static_cast<size_t>(rule_index)];
      if (rule.has_aggregate) {
        NERPA_RETURN_IF_ERROR(ProcessAggRule(rule, head_delta));
        continue;
      }
      auto emit = [&](int64_t weight) -> Status {
        NERPA_ASSIGN_OR_RETURN(Row row, HeadRow(rule));
        int64_t& w = head_delta[row];
        w += weight;
        if (w == 0) head_delta.erase(row);
        return Status::Ok();
      };
      if (is_init_ && !RuleHasPositiveLiteral(rule)) {
        NERPA_RETURN_IF_ERROR(
            ProcessInitFull(rule, /*stop_at_aggregate=*/false, emit));
      }
      for (const DeltaPlan& plan : rule.delta_plans) {
        NERPA_RETURN_IF_ERROR(
            ProcessDeltaPlan(rule, plan, /*stop_at_aggregate=*/false, emit));
      }
    }
    Status folded = FoldCountDelta(head_rel, head_delta);
    ResetTxnMap(head_delta);
    return folded;
  }

  // --- Recursive strata: semi-naive insertion + DRed deletion ---

  struct SccWork {
    RowSet overdeleted;
    RowSet rederived;
    RowSet inserted;
    std::vector<std::unordered_map<Row, std::vector<Row>, RowHash, RowEq>>
        inserted_index;  // parallel to the relation's arrangements
  };

  Status ProcessRecursive(const Stratum& stratum) {
    std::unordered_map<int, SccWork> work;
    for (int rel : stratum.relations) {
      SccWork& w = work[rel];
      w.inserted_index.resize(
          program_.arrangements()[static_cast<size_t>(rel)].size());
    }
    auto in_scc = [&](int rel) { return work.count(rel) != 0; };

    // Does any external dependency carry a delta?  (Cheap early-out.)
    bool external_change = is_init_;
    for (int rule_index : stratum.rules) {
      const CompiledRule& rule =
          program_.rules()[static_cast<size_t>(rule_index)];
      for (const StepPlan& step : rule.steps) {
        if (step.kind != BodyElem::Kind::kLiteral || in_scc(step.relation)) {
          continue;
        }
        RelState& state = e_.relations_[static_cast<size_t>(step.relation)];
        if (!state.set_delta.empty()) external_change = true;
      }
    }
    if (!external_change) return Status::Ok();

    // ---- Phase 1: overdelete, then rederive (DRed). ----
    // Seeds: deletion-direction external changes, everything read OLD.
    std::vector<std::pair<int, Row>> worklist;  // (relation, tuple)
    auto overdelete = [&](int rel, const Row& row) {
      SccWork& w = work[rel];
      if (w.overdeleted.count(row) != 0) return;
      RelState& state = e_.relations_[static_cast<size_t>(rel)];
      if (state.counts.count(row) == 0) return;  // not present before txn
      w.overdeleted.insert(row);
      worklist.emplace_back(rel, row);
    };

    for (int rule_index : stratum.rules) {
      const CompiledRule& rule =
          program_.rules()[static_cast<size_t>(rule_index)];
      for (const DeltaPlan& plan : rule.delta_plans) {
        const StepPlan& pinned =
            rule.steps[static_cast<size_t>(plan.pinned_step)];
        if (in_scc(pinned.relation)) continue;  // SCC pins handled below
        // Deletion direction only: positive literal deletions (weight -1)
        // and negated-literal keys that became present (flip +1 => w -1).
        NERPA_RETURN_IF_ERROR(ProcessDeltaVariantDirection(
            rule, plan, /*deletion_direction=*/true, Mode::kOld,
            [&](std::vector<Value>&) -> Status {
              NERPA_ASSIGN_OR_RETURN(Row row, HeadRow(rule));
              overdelete(rule.head_relation, row);
              return Status::Ok();
            }));
      }
    }
    // Propagate overdeletion through SCC literals (all OLD state).
    while (!worklist.empty()) {
      auto [rel, row] = std::move(worklist.back());
      worklist.pop_back();
      for (int rule_index : stratum.rules) {
        const CompiledRule& rule =
            program_.rules()[static_cast<size_t>(rule_index)];
        for (const DeltaPlan& plan : rule.delta_plans) {
          const StepPlan& pinned =
              rule.steps[static_cast<size_t>(plan.pinned_step)];
          if (pinned.relation != rel || pinned.negated) continue;
          Exec exec;
          exec.rule = &rule;
          exec.lookups = &plan.lookups;
          exec.skip_step = plan.pinned_step;
          exec.delta_modes = false;
          exec.uniform_mode = Mode::kOld;
          NERPA_RETURN_IF_ERROR(WithFrame(rule, [&]() -> Status {
            std::vector<int> trail;
            if (!MatchTerms(pinned.terms, row, trail)) return Status::Ok();
            return ExecSteps(exec, 0, 0, [&](std::vector<Value>&) -> Status {
              NERPA_ASSIGN_OR_RETURN(Row head, HeadRow(rule));
              overdelete(rule.head_relation, head);
              return Status::Ok();
            });
          }));
        }
      }
    }

    // Rederive: a tuple survives if some rule body still derives it from
    // the non-overdeleted remainder (externals read NEW).
    Overlay rederive_overlay;
    for (int rel : stratum.relations) {
      RelOverlay ov;
      ov.removed = &work[rel].overdeleted;
      ov.removed_except = &work[rel].rederived;
      rederive_overlay[rel] = ov;
    }
    size_t total_overdeleted = 0;
    for (int rel : stratum.relations) {
      total_overdeleted += work[rel].overdeleted.size();
    }
    if (total_overdeleted <= 32) {
      // Small overdeletion: per-tuple backward re-derivation is cheapest.
      bool changed = true;
      while (changed) {
        changed = false;
        for (int rel : stratum.relations) {
          SccWork& w = work[rel];
          for (const Row& row : w.overdeleted) {
            if (w.rederived.count(row) != 0) continue;
            NERPA_ASSIGN_OR_RETURN(
                bool derivable,
                CanRederive(stratum, rel, row, &rederive_overlay));
            if (derivable) {
              w.rederived.insert(row);
              changed = true;
            }
          }
        }
      }
    } else {
      // Large overdeletion (dense graphs): forward semi-naive passes over
      // the surviving state, keeping any head that was overdeleted but is
      // still derivable.  Each pass is one full stratum evaluation; passes
      // bound by the re-derivation depth.
      overlay_ = &rederive_overlay;
      bool changed = true;
      while (changed) {
        changed = false;
        for (int rule_index : stratum.rules) {
          const CompiledRule& rule =
              program_.rules()[static_cast<size_t>(rule_index)];
          SccWork& w = work[rule.head_relation];
          Exec exec;
          exec.rule = &rule;
          exec.lookups = &rule.full_plan.lookups;
          exec.delta_modes = false;
          exec.uniform_mode = Mode::kNew;
          Status status = WithFrame(rule, [&]() -> Status {
            return ExecSteps(exec, 0, 0, [&](std::vector<Value>&) -> Status {
              NERPA_ASSIGN_OR_RETURN(Row head, HeadRow(rule));
              if (w.overdeleted.count(head) != 0 &&
                  w.rederived.count(head) == 0) {
                w.rederived.insert(head);
                changed = true;
              }
              return Status::Ok();
            });
          });
          overlay_ = nullptr;
          NERPA_RETURN_IF_ERROR(status);
          overlay_ = &rederive_overlay;
        }
      }
      overlay_ = nullptr;
    }

    // ---- Phase 2: semi-naive insertion over the post-deletion state. ----
    Overlay insert_overlay;
    for (int rel : stratum.relations) {
      RelOverlay ov;
      ov.removed = &work[rel].overdeleted;
      ov.removed_except = &work[rel].rederived;
      ov.added = &work[rel].inserted;
      ov.added_index = &work[rel].inserted_index;
      insert_overlay[rel] = ov;
    }
    overlay_ = &insert_overlay;
    std::vector<std::pair<int, Row>> insert_worklist;
    auto insert_tuple = [&](int rel, const Row& row) {
      SccWork& w = work[rel];
      if (w.inserted.count(row) != 0) return;
      // Present in the working state already?
      RelState& state = e_.relations_[static_cast<size_t>(rel)];
      bool base_present = state.counts.count(row) != 0 &&
                          !(w.overdeleted.count(row) != 0 &&
                            w.rederived.count(row) == 0);
      if (base_present) return;
      w.inserted.insert(row);
      const auto& specs = program_.arrangements()[static_cast<size_t>(rel)];
      for (size_t a = 0; a < specs.size(); ++a) {
        RowView key = ProjectInto(row, specs[a].key_positions, arr_key_buf_);
        auto& index = w.inserted_index[a];
        auto it = index.find(key);
        if (it == index.end()) {
          ++c_.key_rows_materialized;
          it = index.emplace(MaterializeKey(key), std::vector<Row>{}).first;
        }
        it->second.push_back(row);
      }
      insert_worklist.emplace_back(rel, row);
    };

    for (int rule_index : stratum.rules) {
      const CompiledRule& rule =
          program_.rules()[static_cast<size_t>(rule_index)];
      auto emit = [&](std::vector<Value>&) -> Status {
        NERPA_ASSIGN_OR_RETURN(Row row, HeadRow(rule));
        insert_tuple(rule.head_relation, row);
        return Status::Ok();
      };
      if (is_init_ && !RuleHasPositiveLiteral(rule)) {
        Exec exec;
        exec.rule = &rule;
        exec.lookups = &rule.full_plan.lookups;
        exec.delta_modes = false;
        exec.uniform_mode = Mode::kOld;
        NERPA_RETURN_IF_ERROR(WithFrame(rule, [&]() -> Status {
          return ExecSteps(exec, 0, 0, emit);
        }));
      }
      // Also: rules with only external literals and fact-like rules fire
      // through insertion-direction external deltas.
      for (const DeltaPlan& plan : rule.delta_plans) {
        const StepPlan& pinned =
            rule.steps[static_cast<size_t>(plan.pinned_step)];
        if (in_scc(pinned.relation)) continue;
        NERPA_RETURN_IF_ERROR(ProcessDeltaVariantDirection(
            rule, plan, /*deletion_direction=*/false, Mode::kNew, emit));
      }
      // Rederived-from-deletions interplay: a deleted external tuple can
      // also *enable* a negated literal; that is the insertion direction of
      // a negated pin and is covered above.
    }
    while (!insert_worklist.empty()) {
      auto [rel, row] = std::move(insert_worklist.back());
      insert_worklist.pop_back();
      for (int rule_index : stratum.rules) {
        const CompiledRule& rule =
            program_.rules()[static_cast<size_t>(rule_index)];
        for (const DeltaPlan& plan : rule.delta_plans) {
          const StepPlan& pinned =
              rule.steps[static_cast<size_t>(plan.pinned_step)];
          if (pinned.relation != rel || pinned.negated) continue;
          Exec exec;
          exec.rule = &rule;
          exec.lookups = &plan.lookups;
          exec.skip_step = plan.pinned_step;
          exec.delta_modes = false;
          exec.uniform_mode = Mode::kNew;
          NERPA_RETURN_IF_ERROR(WithFrame(rule, [&]() -> Status {
            std::vector<int> trail;
            if (!MatchTerms(pinned.terms, row, trail)) return Status::Ok();
            return ExecSteps(exec, 0, 0, [&](std::vector<Value>&) -> Status {
              NERPA_ASSIGN_OR_RETURN(Row head, HeadRow(rule));
              insert_tuple(rule.head_relation, head);
              return Status::Ok();
            });
          }));
        }
      }
    }
    overlay_ = nullptr;

    // ---- Fold the net changes. ----
    for (int rel : stratum.relations) {
      SccWork& w = work[rel];
      std::vector<std::pair<Row, int>> delta;
      for (const Row& row : w.overdeleted) {
        if (w.rederived.count(row) != 0) continue;
        if (w.inserted.count(row) != 0) continue;  // net zero
        delta.emplace_back(row, -1);
      }
      for (const Row& row : w.inserted) {
        delta.emplace_back(row, +1);
      }
      FoldSetDelta(rel, delta);
    }
    return Status::Ok();
  }

  /// Runs a delta variant restricted to one direction of external change:
  /// deletion direction = positive-literal deletions and negation flips to
  /// present; insertion direction = the mirror images.  All non-pinned
  /// literals are read with `uniform_mode` (recursive strata use all-OLD
  /// for overdeletion and all-NEW for insertion).
  template <typename Sink>
  Status ProcessDeltaVariantDirection(const CompiledRule& rule,
                                      const DeltaPlan& plan,
                                      bool deletion_direction, Mode mode,
                                      Sink&& sink) {
    const StepPlan& pinned =
        rule.steps[static_cast<size_t>(plan.pinned_step)];
    Exec exec;
    exec.rule = &rule;
    exec.lookups = &plan.lookups;
    exec.skip_step = plan.pinned_step;
    exec.delta_modes = false;
    exec.uniform_mode = mode;

    RelState& pinned_state =
        e_.relations_[static_cast<size_t>(pinned.relation)];
    if (!pinned.negated) {
      int want = deletion_direction ? -1 : +1;
      if (pinned_state.set_delta.empty()) return Status::Ok();
      std::vector<Row> rows;
      for (const auto& [row, weight] : pinned_state.set_delta) {
        if ((weight < 0) == (want < 0)) rows.push_back(row);
      }
      for (const Row& row : rows) {
        NERPA_RETURN_IF_ERROR(WithFrame(rule, [&]() -> Status {
          std::vector<int> trail;
          if (!MatchTerms(pinned.terms, row, trail)) return Status::Ok();
          return ExecSteps(exec, 0, 0, sink);
        }));
      }
      return Status::Ok();
    }
    // Negated pin: deletion direction = keys that became present (flip +1).
    if (plan.pinned_arrangement < 0) {
      // Empty key: whole-relation emptiness flip.
      size_t inserted = 0, deleted = 0;
      for (const auto& [row, d] : pinned_state.set_delta) {
        if (d > 0) ++inserted;
        else ++deleted;
      }
      bool old_nonempty = pinned_state.counts.size() + deleted - inserted > 0;
      bool new_nonempty = !pinned_state.counts.empty();
      if (old_nonempty == new_nonempty) return Status::Ok();
      bool became_present = !old_nonempty && new_nonempty;
      if (became_present != deletion_direction) return Status::Ok();
      return WithFrame(rule, [&]() -> Status {
        return ExecSteps(exec, 0, 0, sink);
      });
    }
    Arrangement& arr = pinned_state.arrangements[static_cast<size_t>(
        plan.pinned_arrangement)];
    if (arr.flips.empty()) return Status::Ok();
    int want_flip = deletion_direction ? +1 : -1;
    const auto& spec = program_.arrangements()[static_cast<size_t>(
        pinned.relation)][static_cast<size_t>(plan.pinned_arrangement)];
    std::vector<Row> keys;
    for (const auto& [key, flip] : arr.flips) {
      if ((flip > 0) == (want_flip > 0)) keys.push_back(key);
    }
    for (const Row& key : keys) {
      NERPA_RETURN_IF_ERROR(WithFrame(rule, [&]() -> Status {
        std::vector<int> trail;
        for (size_t k = 0; k < spec.key_positions.size(); ++k) {
          const TermPlan& term =
              pinned.terms[static_cast<size_t>(spec.key_positions[k])];
          if (term.kind == TermPlan::Kind::kCheckConst) {
            if (!(key[k] == term.constant)) return Status::Ok();
          } else {
            size_t slot = static_cast<size_t>(term.slot);
            frame_[slot] = key[k];
            bound_[slot] = 1;
            trail.push_back(term.slot);
          }
        }
        return ExecSteps(exec, 0, 0, sink);
      }));
    }
    return Status::Ok();
  }

  /// Is `row` of SCC relation `rel` derivable under `overlay` (externals
  /// NEW)?  Uses the head-inverted re-derivation plan.
  Result<bool> CanRederive(const Stratum& stratum, int rel, const Row& row,
                           Overlay* overlay) {
    overlay_ = overlay;
    bool derivable = false;
    for (int rule_index : stratum.rules) {
      if (derivable) break;
      const CompiledRule& rule =
          program_.rules()[static_cast<size_t>(rule_index)];
      if (rule.head_relation != rel) continue;
      Exec exec;
      exec.rule = &rule;
      exec.lookups = &rule.rederive_plan.lookups;
      exec.delta_modes = false;
      exec.uniform_mode = Mode::kNew;
      Status status = WithFrame(rule, [&]() -> Status {
        std::vector<int> trail;
        if (!MatchTerms(rule.head_pattern, row, trail)) return Status::Ok();
        return ExecSteps(exec, 0, 0, [&](std::vector<Value>&) -> Status {
          derivable = true;
          // Early exit: report a sentinel error swallowed below.
          return FailedPrecondition("__found__");
        });
      });
      if (!status.ok() && status.message() != "__found__") {
        overlay_ = nullptr;
        return status;
      }
    }
    overlay_ = nullptr;
    return derivable;
  }

  // --- Inputs / outputs / cleanup ---

  Status ApplyInputs() {
    if (e_.pending_.empty()) return Status::Ok();
    if (e_.pending_.size() <= e_.options_.small_commit_ops) {
      return ApplyInputsSmall();
    }
    // Net presence change per (relation, row), respecting op order.
    std::map<int, std::vector<std::pair<Row, int>>> net;
    std::map<int, std::unordered_map<Row, bool, RowHash, RowEq>> finals;
    for (const auto& [rel, row, direction] : e_.pending_) {
      finals[rel][row] = direction > 0;
    }
    for (auto& [rel, rows] : finals) {
      RelState& state = e_.relations_[static_cast<size_t>(rel)];
      for (auto& [row, present_final] : rows) {
        bool present_initial = state.counts.count(row) != 0;
        if (present_initial == present_final) continue;
        net[rel].emplace_back(row, present_final ? +1 : -1);
      }
    }
    e_.pending_.clear();
    for (auto& [rel, delta] : net) {
      FoldSetDelta(rel, delta);
    }
    return Status::Ok();
  }

  /// Small-commit fast path: the batch is tiny, so last-op-wins netting is
  /// a quadratic scan over the pending vector and per-relation grouping
  /// reuses persistent scratch — no std::map nodes, no hash tables, no
  /// allocations in steady state.
  Status ApplyInputsSmall() {
    const auto& pending = e_.pending_;
    for (auto& [rel, delta] : small_input_scratch_) delta.clear();
    for (size_t i = 0; i < pending.size(); ++i) {
      const auto& [rel, row, direction] = pending[i];
      bool superseded = false;  // a later op on the same (rel, row) wins
      for (size_t j = i + 1; j < pending.size() && !superseded; ++j) {
        superseded =
            std::get<0>(pending[j]) == rel && std::get<1>(pending[j]) == row;
      }
      if (superseded) continue;
      RelState& state = e_.relations_[static_cast<size_t>(rel)];
      bool present_final = direction > 0;
      if ((state.counts.count(row) != 0) == present_final) continue;
      std::vector<std::pair<Row, int>>* delta = nullptr;
      for (auto& [r, d] : small_input_scratch_) {
        if (r == rel) {
          delta = &d;
          break;
        }
      }
      if (delta == nullptr) {
        delta = &small_input_scratch_.emplace_back(rel,
                                                   std::vector<std::pair<Row, int>>{})
                     .second;
      }
      delta->emplace_back(row, present_final ? +1 : -1);
    }
    e_.pending_.clear();
    for (const auto& [rel, delta] : small_input_scratch_) {
      if (!delta.empty()) FoldSetDelta(rel, delta);
    }
    return Status::Ok();
  }

  TxnDelta CollectOutputs() {
    TxnDelta out;
    // Only relations touched this transaction can carry a delta.
    for (int rel : dirty_rels_) {
      const RelationDecl& decl =
          program_.relations()[static_cast<size_t>(rel)];
      if (decl.role != RelationRole::kOutput) continue;
      RelState& state = e_.relations_[static_cast<size_t>(rel)];
      if (state.set_delta.empty()) continue;
      SetDelta delta;
      delta.reserve(state.set_delta.size());
      for (const auto& [row, d] : state.set_delta) {
        if (d != 0) delta.emplace_back(row, d > 0 ? +1 : -1);
      }
      std::sort(delta.begin(), delta.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second < b.second;
                  return RowLess(a.first, b.first);
                });
      out.outputs[decl.name] = std::move(delta);
    }
    return out;
  }

  // --- Bootstrap: full evaluation into a completely empty engine ---
  //
  // The delta-rule expansion is wasted work when the engine holds nothing:
  // every delta variant except "pinned on the last-bound positive literal"
  // joins against empty OLD state, the undo log records a fold per derived
  // row that rollback could replace with "wipe to empty", and set-delta
  // bookkeeping tracks transitions that are all trivially 0 -> 1.  So a
  // transaction against an empty engine runs here instead: one full
  // evaluation per rule in uniform NEW mode against the already-folded
  // lower strata, bulk-built arrangements, and no per-row undo/delta
  // bookkeeping.  Outputs are byte-identical to the incremental path
  // (differential-tested); rollback is a wipe back to empty.

  bool EngineIsEmpty() const {
    for (const RelState& state : e_.relations_) {
      if (!state.counts.empty()) return false;
    }
    for (const AggState& agg : e_.agg_states_) {
      if (!agg.groups.empty()) return false;
    }
    return true;
  }

  Result<TxnDelta> RunBootstrap() {
    Status status = ExecuteBootstrap();
    if (!status.ok()) {
      WipeToEmpty();
      FlushCounters();
      return status;
    }
    TxnDelta out = CollectBootstrapOutputs();
    for (int rel : dirty_rels_) {
      e_.relations_[static_cast<size_t>(rel)].dirty = false;
    }
    dirty_rels_.clear();
    FlushCounters();
    ++e_.transactions_;
    return out;
  }

  Status ExecuteBootstrap() {
    ApplyInputsBootstrap();
    for (const Stratum& stratum : program_.strata()) {
      if (stratum.recursive) {
        NERPA_RETURN_IF_ERROR(BootstrapRecursive(stratum));
      } else {
        NERPA_RETURN_IF_ERROR(BootstrapNonRecursive(stratum));
      }
    }
    return Status::Ok();
  }

  /// Nets the queued inputs straight into relation counts.  Last op per
  /// (relation, row) wins, so the batch is walked backwards and the first
  /// op seen decides; tombstones are tracked only for final deletes (a
  /// bootstrap batch — e.g. a monitor full dump — is typically all
  /// inserts, so the common case allocates nothing extra).
  void ApplyInputsBootstrap() {
    std::unordered_map<int, RowSet> final_deletes;
    for (auto it = e_.pending_.rbegin(); it != e_.pending_.rend(); ++it) {
      const auto& [rel, row, direction] = *it;
      if (direction > 0) {
        auto fd = final_deletes.find(rel);
        if (fd != final_deletes.end() && fd->second.count(row) != 0) continue;
        RelState& state = e_.relations_[static_cast<size_t>(rel)];
        if (state.counts.emplace(row, 1).second) MarkDirty(rel);
      } else {
        final_deletes[rel].insert(row);
      }
    }
    e_.pending_.clear();
    for (int rel : dirty_rels_) BuildArrangements(rel);
  }

  /// The positive literal whose relation holds the most rows: the best
  /// axis to partition the join pass across workers.  -1 if the body has
  /// no positive literal.
  int ChooseBootstrapPin(const CompiledRule& rule) const {
    int best = -1;
    size_t best_rows = 0;
    for (size_t s = 0; s < rule.steps.size(); ++s) {
      const StepPlan& step = rule.steps[s];
      if (step.kind != BodyElem::Kind::kLiteral || step.negated) continue;
      size_t rows =
          e_.relations_[static_cast<size_t>(step.relation)].counts.size();
      if (best < 0 || rows > best_rows) {
        best = static_cast<int>(s);
        best_rows = rows;
      }
    }
    return best;
  }

  static const DeltaPlan* FindDeltaPlan(const CompiledRule& rule,
                                        int pinned_step) {
    for (const DeltaPlan& plan : rule.delta_plans) {
      if (plan.pinned_step == pinned_step) return &plan;
    }
    return nullptr;
  }

  /// Evaluates `rule` over a slice of the pinned relation's rows, with all
  /// other literals read in NEW mode, appending head derivations to `out`.
  /// Runs on worker Txns during the parallel bootstrap: reads only shared
  /// engine state (stable during a stratum's evaluation) and writes only
  /// this Txn's scratch plus `out`.
  Status BootstrapEvalPinned(const CompiledRule& rule, const DeltaPlan& plan,
                             const Row* const* rows, size_t n,
                             std::vector<Row>& out) {
    const StepPlan& pinned =
        rule.steps[static_cast<size_t>(plan.pinned_step)];
    Exec exec;
    exec.rule = &rule;
    exec.lookups = &plan.lookups;
    exec.skip_step = plan.pinned_step;
    exec.pinned_step = plan.pinned_step;
    exec.delta_modes = false;
    exec.uniform_mode = Mode::kNew;
    auto emit = [&](std::vector<Value>&) -> Status {
      return EmitBootstrapHead(rule, out);
    };
    std::vector<int>& trail =
        trail_buffers_[static_cast<size_t>(plan.pinned_step)];
    for (size_t i = 0; i < n; ++i) {
      const Row& row = *rows[i];
      NERPA_RETURN_IF_ERROR(WithFrame(rule, [&]() -> Status {
        trail.clear();
        if (!MatchTerms(pinned.terms, row, trail)) return Status::Ok();
        return ExecSteps(exec, 0, 0, emit);
      }));
    }
    return Status::Ok();
  }

  /// Lazily builds the engine's bootstrap pool + per-worker Txns; returns
  /// the worker count (1 = stay serial).
  size_t EnsureWorkers() {
    size_t want = e_.options_.bootstrap_threads;
    if (want == 0) {
      unsigned hw = std::thread::hardware_concurrency();
      want = hw == 0 ? 1 : std::min<size_t>(hw, 16);
    }
    if (want <= 1) return 1;
    if (e_.bootstrap_pool_ == nullptr) {
      e_.bootstrap_pool_ = std::make_unique<nerpa::ThreadPool>(want);
      for (size_t i = 0; i < want; ++i) {
        e_.bootstrap_workers_.push_back(std::make_unique<Txn>(&e_));
      }
    }
    return e_.bootstrap_workers_.size();
  }

  /// Fans one rule's join pass out across the pool: the pinned relation's
  /// rows are split into contiguous chunks, each worker Txn evaluates its
  /// chunk into a private row vector (private frame/scratch/counters,
  /// shared read-only engine state), and the partials concatenate at the
  /// barrier.  The stratum fold sorts before aggregating derivation
  /// counts, so concatenation order cannot affect the result — serial and
  /// parallel bootstraps are byte-identical.
  Status BootstrapRuleParallel(const CompiledRule& rule, const DeltaPlan& plan,
                               RelState& pinned_state,
                               std::vector<Row>& emitted) {
    std::vector<const Row*> rows;
    rows.reserve(pinned_state.counts.size());
    for (const auto& [row, count] : pinned_state.counts) rows.push_back(&row);
    size_t n = rows.size();
    size_t workers = e_.bootstrap_workers_.size();
    size_t chunk = (n + workers - 1) / workers;
    std::vector<std::vector<Row>> partial(workers);
    std::vector<Status> status(workers, Status::Ok());
    for (size_t w = 0; w < workers; ++w) {
      size_t begin = w * chunk;
      size_t end = std::min(n, begin + chunk);
      if (begin >= end) break;
      Txn* worker = e_.bootstrap_workers_[w].get();
      std::vector<Row>* out = &partial[w];
      Status* st = &status[w];
      e_.bootstrap_pool_->Submit([worker, &rule, &plan, &rows, begin, end,
                                  out, st]() {
        *st = worker->BootstrapEvalPinned(rule, plan, rows.data() + begin,
                                          end - begin, *out);
      });
    }
    e_.bootstrap_pool_->WaitIdle();
    for (const std::unique_ptr<Txn>& worker : e_.bootstrap_workers_) {
      worker->FlushCounters();
    }
    for (const Status& st : status) NERPA_RETURN_IF_ERROR(st);
    for (std::vector<Row>& p : partial) {
      emitted.insert(emitted.end(), std::make_move_iterator(p.begin()),
                     std::make_move_iterator(p.end()));
    }
    return Status::Ok();
  }

  Status BootstrapRule(const CompiledRule& rule, std::vector<Row>& emitted) {
    int pin = ChooseBootstrapPin(rule);
    if (pin >= 0) {
      const StepPlan& pinned = rule.steps[static_cast<size_t>(pin)];
      RelState& pinned_state =
          e_.relations_[static_cast<size_t>(pinned.relation)];
      if (pinned_state.counts.empty()) return Status::Ok();  // empty join
      const DeltaPlan* plan = FindDeltaPlan(rule, pin);
      if (plan != nullptr &&
          pinned_state.counts.size() >=
              e_.options_.parallel_bootstrap_min_rows &&
          EnsureWorkers() > 1) {
        return BootstrapRuleParallel(rule, *plan, pinned_state, emitted);
      }
    }
    // Serial: one full evaluation against the post-state of lower strata.
    Exec exec;
    exec.rule = &rule;
    exec.lookups = &rule.full_plan.lookups;
    exec.delta_modes = false;
    exec.uniform_mode = Mode::kNew;
    return WithFrame(rule, [&]() -> Status {
      return ExecSteps(exec, 0, 0, [&](std::vector<Value>&) -> Status {
        return EmitBootstrapHead(rule, emitted);
      });
    });
  }

  /// Appends `rule`'s head row for the current frame to `out`.  The
  /// all-bare-variable head gathers in place, skipping the Result<Row>
  /// plumbing entirely — this runs once per derived tuple during cold
  /// start, the single hottest call in a bootstrap.
  Status EmitBootstrapHead(const CompiledRule& rule, std::vector<Row>& out) {
    if (rule.head_all_vars) {
      Row& row = out.emplace_back();
      row.reserve(rule.head_var_slots.size());
      for (int slot : rule.head_var_slots) {
        row.push_back(frame_[static_cast<size_t>(slot)]);
      }
      return Status::Ok();
    }
    NERPA_ASSIGN_OR_RETURN(Row head, HeadRow(rule));
    out.push_back(std::move(head));
    return Status::Ok();
  }

  /// Bootstrap aggregation: collect all bindings with one full evaluation,
  /// install the group state wholesale (no undo log — rollback wipes), and
  /// emit each group's result row.
  Status BootstrapAggRule(const CompiledRule& rule,
                          std::vector<Row>& emitted) {
    const StepPlan& agg =
        rule.steps[static_cast<size_t>(rule.aggregate_step)];
    std::unordered_map<Row, ZSet, RowHash, RowEq> collected;
    Exec exec;
    exec.rule = &rule;
    exec.lookups = &rule.full_plan.lookups;
    exec.delta_modes = false;
    exec.uniform_mode = Mode::kNew;
    exec.stop_at_aggregate = true;
    NERPA_RETURN_IF_ERROR(WithFrame(rule, [&]() -> Status {
      return ExecSteps(exec, 0, 0, [&](std::vector<Value>&) -> Status {
        Row group = CollectSlots(agg.group_slots);
        Row binding = CollectSlots(agg.binding_slots);
        NERPA_ASSIGN_OR_RETURN(Value arg, EvalExpr(*agg.agg_arg, frame_));
        binding.push_back(std::move(arg));
        ++collected[std::move(group)][std::move(binding)];
        return Status::Ok();
      });
    }));
    if (collected.empty()) return Status::Ok();
    AggState& state =
        e_.agg_states_[static_cast<size_t>(agg.agg_state_index)];
    for (auto& [group, bindings] : collected) {
      ZSet& group_state = state.groups[group];
      for (auto& [binding, weight] : bindings) group_state[binding] = weight;
      std::optional<Value> result = ComputeAgg(agg, group_state);
      if (!result) continue;
      frame_.assign(static_cast<size_t>(rule.frame_size), Value());
      bound_.assign(static_cast<size_t>(rule.frame_size), 0);
      for (size_t g = 0; g < agg.group_slots.size(); ++g) {
        size_t slot = static_cast<size_t>(agg.group_slots[g]);
        frame_[slot] = group[g];
        bound_[slot] = 1;
      }
      frame_[static_cast<size_t>(agg.result_slot)] = *result;
      bound_[static_cast<size_t>(agg.result_slot)] = 1;
      NERPA_ASSIGN_OR_RETURN(Row row, HeadRow(rule));
      emitted.push_back(std::move(row));
    }
    return Status::Ok();
  }

  /// Folds a stratum's emitted head rows into its relation: sort, run-length
  /// aggregate equal rows into derivation counts, bulk-load, and — because
  /// the rows are now sorted and unique — emit the output set delta as a
  /// by-product, exactly matching the sorted form CollectOutputs() produces
  /// on the incremental path.
  void FoldBootstrapStratum(int rel, std::vector<Row>& emitted) {
    if (emitted.empty()) return;
    MarkDirty(rel);
    std::sort(emitted.begin(), emitted.end());
    size_t unique = 0;
    for (size_t i = 0; i < emitted.size(); ++unique) {
      size_t j = i + 1;
      while (j < emitted.size() && emitted[i] == emitted[j]) ++j;
      i = j;
    }
    RelState& state = e_.relations_[static_cast<size_t>(rel)];
    state.counts.reserve(unique);
    const RelationDecl& decl = program_.relations()[static_cast<size_t>(rel)];
    SetDelta* delta = nullptr;
    if (decl.role == RelationRole::kOutput) {
      delta = &bootstrap_delta_.outputs[decl.name];
      delta->reserve(unique);
    }
    for (size_t i = 0; i < emitted.size();) {
      size_t j = i + 1;
      while (j < emitted.size() && emitted[i] == emitted[j]) ++j;
      if (delta != nullptr) delta->emplace_back(emitted[i], +1);
      state.counts.emplace(std::move(emitted[i]),
                           static_cast<int64_t>(j - i));
      i = j;
    }
    BuildArrangements(rel);
    emitted.clear();
  }

  Status BootstrapNonRecursive(const Stratum& stratum) {
    int head_rel = stratum.relations[0];
    std::vector<Row>& emitted = bootstrap_emit_;
    emitted.clear();
    for (int rule_index : stratum.rules) {
      const CompiledRule& rule =
          program_.rules()[static_cast<size_t>(rule_index)];
      if (rule.has_aggregate) {
        NERPA_RETURN_IF_ERROR(BootstrapAggRule(rule, emitted));
      } else {
        NERPA_RETURN_IF_ERROR(BootstrapRule(rule, emitted));
      }
    }
    FoldBootstrapStratum(head_rel, emitted);
    return Status::Ok();
  }

  /// Bootstrap recursion: plain semi-naive insertion from empty SCC state.
  /// Rules without an SCC positive literal seed via full evaluation (they
  /// read only already-folded externals); the worklist then drives rules
  /// pinned on each inserted SCC tuple, exactly like the incremental
  /// insertion phase.  No DRed pass — nothing can be deleted from empty.
  Status BootstrapRecursive(const Stratum& stratum) {
    std::unordered_map<int, SccWork> work;
    for (int rel : stratum.relations) {
      SccWork& w = work[rel];
      w.inserted_index.resize(
          program_.arrangements()[static_cast<size_t>(rel)].size());
    }
    auto in_scc = [&](int rel) { return work.count(rel) != 0; };

    Overlay insert_overlay;
    for (int rel : stratum.relations) {
      RelOverlay ov;
      ov.added = &work[rel].inserted;
      ov.added_index = &work[rel].inserted_index;
      insert_overlay[rel] = ov;
    }
    overlay_ = &insert_overlay;
    std::vector<std::pair<int, Row>> insert_worklist;
    auto insert_tuple = [&](int rel, const Row& row) {
      SccWork& w = work[rel];
      if (w.inserted.count(row) != 0) return;
      w.inserted.insert(row);
      const auto& specs = program_.arrangements()[static_cast<size_t>(rel)];
      for (size_t a = 0; a < specs.size(); ++a) {
        RowView key = ProjectInto(row, specs[a].key_positions, arr_key_buf_);
        auto& index = w.inserted_index[a];
        auto it = index.find(key);
        if (it == index.end()) {
          ++c_.key_rows_materialized;
          it = index.emplace(MaterializeKey(key), std::vector<Row>{}).first;
        }
        it->second.push_back(row);
      }
      insert_worklist.emplace_back(rel, row);
    };

    auto finish = [&](Status status) {
      overlay_ = nullptr;
      return status;
    };
    for (int rule_index : stratum.rules) {
      const CompiledRule& rule =
          program_.rules()[static_cast<size_t>(rule_index)];
      bool has_scc_positive = false;
      for (const StepPlan& step : rule.steps) {
        if (step.kind == BodyElem::Kind::kLiteral && !step.negated &&
            in_scc(step.relation)) {
          has_scc_positive = true;
          break;
        }
      }
      if (has_scc_positive) continue;  // fires only via the worklist
      Exec exec;
      exec.rule = &rule;
      exec.lookups = &rule.full_plan.lookups;
      exec.delta_modes = false;
      exec.uniform_mode = Mode::kNew;
      Status status = WithFrame(rule, [&]() -> Status {
        return ExecSteps(exec, 0, 0, [&](std::vector<Value>&) -> Status {
          NERPA_ASSIGN_OR_RETURN(Row head, HeadRow(rule));
          insert_tuple(rule.head_relation, head);
          return Status::Ok();
        });
      });
      if (!status.ok()) return finish(status);
    }
    while (!insert_worklist.empty()) {
      auto [rel, row] = std::move(insert_worklist.back());
      insert_worklist.pop_back();
      for (int rule_index : stratum.rules) {
        const CompiledRule& rule =
            program_.rules()[static_cast<size_t>(rule_index)];
        for (const DeltaPlan& plan : rule.delta_plans) {
          const StepPlan& pinned =
              rule.steps[static_cast<size_t>(plan.pinned_step)];
          if (pinned.relation != rel || pinned.negated) continue;
          Exec exec;
          exec.rule = &rule;
          exec.lookups = &plan.lookups;
          exec.skip_step = plan.pinned_step;
          exec.delta_modes = false;
          exec.uniform_mode = Mode::kNew;
          Status status = WithFrame(rule, [&]() -> Status {
            std::vector<int> trail;
            if (!MatchTerms(pinned.terms, row, trail)) return Status::Ok();
            return ExecSteps(exec, 0, 0, [&](std::vector<Value>&) -> Status {
              NERPA_ASSIGN_OR_RETURN(Row head, HeadRow(rule));
              insert_tuple(rule.head_relation, head);
              return Status::Ok();
            });
          });
          if (!status.ok()) return finish(status);
        }
      }
    }
    overlay_ = nullptr;

    for (int rel : stratum.relations) {
      SccWork& w = work[rel];
      if (w.inserted.empty()) continue;
      // Reuse the stratum fold: semi-naive insertion already deduplicated,
      // so every run has length 1 (count 1, set semantics in recursion).
      std::vector<Row>& emitted = bootstrap_emit_;
      emitted.clear();
      emitted.reserve(w.inserted.size());
      for (const Row& row : w.inserted) emitted.push_back(row);
      FoldBootstrapStratum(rel, emitted);
    }
    return Status::Ok();
  }

  TxnDelta CollectBootstrapOutputs() {
    TxnDelta out = std::move(bootstrap_delta_);
    bootstrap_delta_ = TxnDelta{};
    return out;
  }

  /// Bootstrap rollback: the pre-transaction state was empty, so undoing
  /// is wiping every touched structure rather than replaying a log.
  void WipeToEmpty() {
    overlay_ = nullptr;
    for (int rel : dirty_rels_) {
      RelState& state = e_.relations_[static_cast<size_t>(rel)];
      state.dirty = false;
      state.counts = ZSet{};
      state.set_delta = ZSet{};
      state.txn_deleted.clear();
      for (Arrangement& arr : state.arrangements) {
        arr.index = {};
        arr.flips = {};
        arr.deleted = {};
      }
    }
    dirty_rels_.clear();
    for (AggState& agg : e_.agg_states_) agg.groups = {};
    bootstrap_emit_ = std::vector<Row>{};
    bootstrap_delta_ = TxnDelta{};
    fold_log_.clear();
    agg_log_.clear();
    e_.pending_.clear();
  }

  /// clear() on an unordered_map keeps its buckets, and that is the fast
  /// path: steady-state transactions of similar size reuse the table with
  /// no rehashing.  But clear() is also O(bucket_count), so after one huge
  /// transaction the lingering capacity would tax every later small one —
  /// when the buckets far exceed this transaction's needs, swap in a fresh
  /// map sized for deltas like the current one.
  template <typename Map>
  static void ResetTxnMap(Map& map) {
    size_t used = map.size();
    if (map.bucket_count() > 64 + 8 * used) {
      Map fresh;
      fresh.reserve(2 * used);
      fresh.swap(map);
    } else {
      map.clear();
    }
  }

  /// Visits only relations touched this transaction, so per-commit work is
  /// proportional to the change, not the number of relations/arrangements.
  void Cleanup() {
    for (int rel : dirty_rels_) {
      RelState& state = e_.relations_[static_cast<size_t>(rel)];
      state.dirty = false;
      ResetTxnMap(state.set_delta);
      if (state.txn_deleted.capacity() > 1024) {
        std::vector<Row>{}.swap(state.txn_deleted);
      } else {
        state.txn_deleted.clear();
      }
      for (Arrangement& arr : state.arrangements) {
        ResetTxnMap(arr.flips);
        ResetTxnMap(arr.deleted);
      }
    }
    dirty_rels_.clear();
  }

  Engine& e_;
  const Program& program_;
  bool is_init_ = false;
  const Overlay* overlay_ = nullptr;
  std::vector<Value> frame_;
  std::vector<char> bound_;

  /// Undo log: every fold applied this transaction; replayed in reverse
  /// (with logging off) if the transaction errors.
  struct FoldRecord {
    int rel;
    Row row;
    int64_t weight;  // set-level: the +-1 direction; count-level: the weight
    bool set_level;
  };
  std::vector<FoldRecord> fold_log_;
  /// Undo log for persistent aggregation state.
  struct AggRecord {
    int state_index;
    Row group;
    Row binding;
    int64_t weight;
  };
  std::vector<AggRecord> agg_log_;
  bool rolling_back_ = false;

  std::vector<int> dirty_rels_;        // relations touched this transaction
  ValueVec arr_key_buf_;               // scratch for index-maintenance keys
  std::vector<ValueVec> key_buffers_;  // per-step-depth probe-key buffers
  std::vector<std::vector<int>> trail_buffers_;  // per-step-depth match
                                                 // trails (no per-row alloc)
  ZSet head_scratch_;                  // head-delta accumulator (reused)
  std::vector<Row> bootstrap_emit_;    // bootstrap head-row accumulator
  TxnDelta bootstrap_delta_;           // bootstrap output deltas (pre-sorted
                                       // by the stratum fold)

  /// Transaction-local hot-path counters (merged via FlushCounters()).
  struct Counters {
    uint64_t rule_firings = 0;
    uint64_t probes = 0;
    uint64_t probe_hits = 0;
    uint64_t scans = 0;
    uint64_t key_rows_materialized = 0;
    uint64_t key_allocs_saved = 0;
  };
  Counters c_;

  // Small-commit input scratch: per-relation net deltas, reused across
  // commits so the fast path performs no map/node allocations.
  std::vector<std::pair<int, std::vector<std::pair<Row, int>>>>
      small_input_scratch_;
};

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

void Engine::InitRuntime() {
  relations_.resize(program_->relations().size());
  for (size_t rel = 0; rel < relations_.size(); ++rel) {
    relations_[rel].arrangements.resize(program_->arrangements()[rel].size());
  }
  if (!options_.use_arrangements) {
    // Incremental antijoin is driven by arrangement presence flips; refuse
    // programs that need it rather than computing wrong answers.
    for (const CompiledRule& rule : program_->rules()) {
      for (const StepPlan& step : rule.steps) {
        if (step.kind == BodyElem::Kind::kLiteral && step.negated) {
          LOG_ERROR << "dlog: EngineOptions.use_arrangements=false is "
                       "incompatible with negation (rule at line "
                    << rule.line << "); re-enabling arrangements";
          options_.use_arrangements = true;
        }
      }
    }
  }
  agg_states_.resize(static_cast<size_t>(program_->aggregate_state_count()));
  txn_ = std::make_unique<Txn>(this);
}

Engine::Engine(std::shared_ptr<const Program> program, EngineOptions options)
    : program_(std::move(program)), options_(options) {
  InitRuntime();
  Result<TxnDelta> result = txn_->Run(/*is_init=*/true);
  if (result.ok()) {
    initial_delta_ = std::move(result).value();
  } else {
    // Fact evaluation can only fail on runtime expression errors (e.g.
    // division by zero in a fact); surface loudly.
    LOG_ERROR << "dlog: fact evaluation failed: "
              << result.status().ToString();
  }
}

Engine::Engine(std::shared_ptr<const Program> program, EngineOptions options,
               RestoreTag)
    : program_(std::move(program)), options_(options) {
  // Restore path: runtime structures only.  The caller loads relation and
  // aggregation state from the checkpoint; the initial fact transaction
  // must NOT run (its derivations are part of the checkpointed state).
  InitRuntime();
}

int Engine::RelationId(std::string_view name) const {
  return program_->FindRelation(name);
}

Status Engine::Insert(std::string_view relation, Row row) {
  int rel = RelationId(relation);
  if (rel < 0) return NotFound("no relation '" + std::string(relation) + "'");
  const RelationDecl& decl = program_->relation(rel);
  if (decl.role != RelationRole::kInput) {
    return FailedPrecondition("relation '" + decl.name + "' is not an input");
  }
  NERPA_RETURN_IF_ERROR(decl.CheckRow(row));
  pending_.emplace_back(rel, std::move(row), +1);
  return Status::Ok();
}

Status Engine::Delete(std::string_view relation, Row row) {
  int rel = RelationId(relation);
  if (rel < 0) return NotFound("no relation '" + std::string(relation) + "'");
  const RelationDecl& decl = program_->relation(rel);
  if (decl.role != RelationRole::kInput) {
    return FailedPrecondition("relation '" + decl.name + "' is not an input");
  }
  NERPA_RETURN_IF_ERROR(decl.CheckRow(row));
  pending_.emplace_back(rel, std::move(row), -1);
  return Status::Ok();
}

Engine::~Engine() = default;

Result<TxnDelta> Engine::Commit() { return txn_->Run(/*is_init=*/false); }

TxnDelta Engine::TakeInitialDelta() {
  TxnDelta out = std::move(initial_delta_);
  initial_delta_ = TxnDelta{};
  return out;
}

// --- Checkpointing ---
//
// Blob layout (all integers little-endian, host-local — checkpoints are
// read back on the machine that wrote them):
//
//   "NDCK" | u32 version | u64 program fingerprint
//   u32 nrels | nrels x ( u32 namelen | name | u64 nrows |
//                         nrows x ( row | i64 count ) )
//   u32 naggs | naggs x ( u64 ngroups | ngroups x ( group-row |
//                         u64 nbindings | nbindings x ( row | i64 count ) ) )
//
// row   = u32 ncols | ncols x value
// value = tag byte (1 bool, 2 int, 3 bit, 4 string, 5 tuple) + payload
//
// Arrangements are deliberately absent: they are pure derived indexes and
// one linear BuildArrangements() pass per relation rebuilds them far
// cheaper than storing them.

namespace {

constexpr char kCheckpointMagic[4] = {'N', 'D', 'C', 'K'};
constexpr uint32_t kCheckpointVersion = 1;
constexpr int kMaxValueDepth = 64;

void PutU32(std::string& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void PutU64(std::string& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void PutValue(std::string& out, const Value& v) {
  if (v.is_bool()) {
    out.push_back(1);
    out.push_back(v.as_bool() ? 1 : 0);
  } else if (v.is_int()) {
    out.push_back(2);
    PutU64(out, static_cast<uint64_t>(v.as_int()));
  } else if (v.is_bit()) {
    out.push_back(3);
    PutU64(out, v.as_bit());
  } else if (v.is_string()) {
    out.push_back(4);
    const std::string& s = v.as_string();
    PutU32(out, static_cast<uint32_t>(s.size()));
    out.append(s);
  } else {
    out.push_back(5);
    const ValueVec& elems = v.as_tuple();
    PutU32(out, static_cast<uint32_t>(elems.size()));
    for (const Value& elem : elems) PutValue(out, elem);
  }
}

void PutRow(std::string& out, const Row& row) {
  PutU32(out, static_cast<uint32_t>(row.size()));
  for (size_t i = 0; i < row.size(); ++i) PutValue(out, row[i]);
}

/// Bounds-checked cursor over a checkpoint blob.  Any overrun or malformed
/// tag latches `ok = false`; readers return zero values after that, and the
/// caller checks `ok` once at the end of each structure.
struct BlobReader {
  const char* p;
  const char* end;
  bool ok = true;

  bool Need(size_t n) {
    if (static_cast<size_t>(end - p) < n) {
      ok = false;
      return false;
    }
    return true;
  }
  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(*p++);
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v;
    std::memcpy(&v, p, 4);
    p += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v;
    std::memcpy(&v, p, 8);
    p += 8;
    return v;
  }
  bool ReadValue(Value& out, int depth) {
    if (!ok || depth > kMaxValueDepth) {
      ok = false;
      return false;
    }
    switch (U8()) {
      case 1:
        out = Value::Bool(U8() != 0);
        return ok;
      case 2:
        out = Value::Int(static_cast<int64_t>(U64()));
        return ok;
      case 3:
        out = Value::Bit(U64());
        return ok;
      case 4: {
        uint32_t len = U32();
        if (!Need(len)) return false;
        out = Value::String(std::string(p, len));
        p += len;
        return true;
      }
      case 5: {
        uint32_t n = U32();
        ValueVec elems;
        if (!Need(n)) return false;  // each element is >= 1 byte
        elems.reserve(n);
        for (uint32_t i = 0; i < n; ++i) {
          Value elem;
          if (!ReadValue(elem, depth + 1)) return false;
          elems.push_back(std::move(elem));
        }
        out = Value::Tuple(std::move(elems));
        return true;
      }
      default:
        ok = false;
        return false;
    }
  }
  bool ReadRow(Row& out) {
    uint32_t n = U32();
    if (!Need(n)) return false;  // each value is >= 1 byte
    out = Row{};
    out.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Value v;
      if (!ReadValue(v, 0)) return false;
      out.push_back(std::move(v));
    }
    return true;
  }
};

}  // namespace

uint64_t Engine::StateFingerprint() const {
  // Canonical program text pins rules, relations, and column types; the
  // format version pins the blob layout.  Options that only shape derived
  // indexes (use_arrangements, thread counts) are excluded — Restore()
  // rebuilds those per its own options.
  uint64_t h = Fnv1a(program_->ast().ToString());
  return Fnv1a(&kCheckpointVersion, sizeof(kCheckpointVersion), h);
}

std::string Engine::SerializeState() const {
  std::string out;
  out.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  PutU32(out, kCheckpointVersion);
  PutU64(out, StateFingerprint());
  PutU32(out, static_cast<uint32_t>(relations_.size()));
  for (size_t rel = 0; rel < relations_.size(); ++rel) {
    const std::string& name = program_->relations()[rel].name;
    PutU32(out, static_cast<uint32_t>(name.size()));
    out.append(name);
    const ZSet& counts = relations_[rel].counts;
    PutU64(out, counts.size());
    for (const auto& [row, count] : counts) {
      PutRow(out, row);
      PutU64(out, static_cast<uint64_t>(count));
    }
  }
  PutU32(out, static_cast<uint32_t>(agg_states_.size()));
  for (const AggState& agg : agg_states_) {
    PutU64(out, agg.groups.size());
    for (const auto& [group, bindings] : agg.groups) {
      PutRow(out, group);
      PutU64(out, bindings.size());
      for (const auto& [binding, count] : bindings) {
        PutRow(out, binding);
        PutU64(out, static_cast<uint64_t>(count));
      }
    }
  }
  return out;
}

Result<std::unique_ptr<Engine>> Engine::Restore(
    std::shared_ptr<const Program> program, std::string_view blob,
    EngineOptions options) {
  if (program == nullptr) return InvalidArgument("null program");
  auto corrupt = [](const char* what) {
    return FailedPrecondition(std::string("dlog checkpoint rejected: ") +
                              what);
  };
  std::unique_ptr<Engine> engine(
      new Engine(std::move(program), options, RestoreTag{}));
  BlobReader r{blob.data(), blob.data() + blob.size()};
  if (!r.Need(sizeof(kCheckpointMagic)) ||
      std::memcmp(r.p, kCheckpointMagic, sizeof(kCheckpointMagic)) != 0) {
    return corrupt("bad magic");
  }
  r.p += sizeof(kCheckpointMagic);
  if (r.U32() != kCheckpointVersion) return corrupt("unsupported version");
  if (r.U64() != engine->StateFingerprint() || !r.ok) {
    return corrupt("program fingerprint mismatch");
  }
  if (r.U32() != engine->relations_.size()) {
    return corrupt("relation count mismatch");
  }
  for (size_t rel = 0; rel < engine->relations_.size(); ++rel) {
    const RelationDecl& decl = engine->program_->relations()[rel];
    uint32_t name_len = r.U32();
    if (!r.Need(name_len) ||
        std::string_view(r.p, name_len) != decl.name) {
      return corrupt("relation name mismatch");
    }
    r.p += name_len;
    uint64_t nrows = r.U64();
    if (!r.Need(nrows)) return corrupt("truncated relation");
    ZSet& counts = engine->relations_[rel].counts;
    counts.reserve(nrows);
    for (uint64_t i = 0; i < nrows; ++i) {
      Row row;
      if (!r.ReadRow(row)) return corrupt("truncated row");
      if (row.size() != decl.columns.size()) {
        return corrupt("row arity mismatch");
      }
      int64_t count = static_cast<int64_t>(r.U64());
      if (!r.ok || count <= 0) return corrupt("bad derivation count");
      counts.emplace(std::move(row), count);
    }
  }
  if (r.U32() != engine->agg_states_.size()) {
    return corrupt("aggregate state count mismatch");
  }
  for (AggState& agg : engine->agg_states_) {
    uint64_t ngroups = r.U64();
    if (!r.Need(ngroups)) return corrupt("truncated aggregate state");
    agg.groups.reserve(ngroups);
    for (uint64_t g = 0; g < ngroups; ++g) {
      Row group;
      if (!r.ReadRow(group)) return corrupt("truncated group key");
      ZSet& bindings = agg.groups[std::move(group)];
      uint64_t nbindings = r.U64();
      if (!r.Need(nbindings)) return corrupt("truncated group");
      bindings.reserve(nbindings);
      for (uint64_t b = 0; b < nbindings; ++b) {
        Row binding;
        if (!r.ReadRow(binding)) return corrupt("truncated binding");
        int64_t count = static_cast<int64_t>(r.U64());
        if (!r.ok || count <= 0) return corrupt("bad binding count");
        bindings[std::move(binding)] = count;
      }
    }
  }
  if (!r.ok) return corrupt("truncated blob");
  if (r.p != r.end) return corrupt("trailing bytes");
  for (size_t rel = 0; rel < engine->relations_.size(); ++rel) {
    if (!engine->relations_[rel].counts.empty()) {
      engine->txn_->BuildArrangements(static_cast<int>(rel));
    }
  }
  engine->txn_->FlushCounters();
  return engine;
}

Result<std::vector<Row>> Engine::Dump(std::string_view relation) const {
  int rel = RelationId(relation);
  if (rel < 0) return NotFound("no relation '" + std::string(relation) + "'");
  std::vector<Row> rows;
  rows.reserve(relations_[static_cast<size_t>(rel)].counts.size());
  for (const auto& [row, count] : relations_[static_cast<size_t>(rel)].counts) {
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(), RowLess);
  return rows;
}

bool Engine::Contains(std::string_view relation, const Row& row) const {
  int rel = RelationId(relation);
  if (rel < 0) return false;
  return relations_[static_cast<size_t>(rel)].counts.count(row) != 0;
}

size_t Engine::Size(std::string_view relation) const {
  int rel = RelationId(relation);
  if (rel < 0) return 0;
  return relations_[static_cast<size_t>(rel)].counts.size();
}

Engine::Stats Engine::GetStats() const {
  Stats stats;
  stats.rule_firings = rule_firings_;
  stats.transactions = transactions_;
  stats.probes = probes_;
  stats.probe_hits = probe_hits_;
  stats.scans = scans_;
  stats.key_rows_materialized = key_rows_materialized_;
  stats.key_allocs_saved = key_allocs_saved_;
  stats.intern = GetInternPoolStats();
  // Approximate node overhead of one unordered_map/set entry (libstdc++:
  // next pointer + cached hash, plus allocator slack).
  constexpr size_t kNodeOverhead = 2 * sizeof(void*);
  for (const RelState& state : relations_) {
    stats.tuples += state.counts.size();
    for (const Arrangement& arr : state.arrangements) {
      stats.arrangement_bytes += arr.index.bucket_count() * sizeof(void*);
      for (const auto& [key, bucket] : arr.index) {
        stats.arrangement_entries += bucket.size();
        stats.arrangement_bytes += kNodeOverhead + sizeof(key) +
                                   key.size() * sizeof(Value) +
                                   bucket.bucket_count() * sizeof(void*) +
                                   bucket.size() * (kNodeOverhead + sizeof(Row));
        // Interned payloads are shared process-wide, so indexed rows cost
        // only their inline Value words here.
        for (const Row& row : bucket) {
          stats.arrangement_bytes += row.size() * sizeof(Value);
        }
      }
    }
  }
  return stats;
}

}  // namespace nerpa::dlog
