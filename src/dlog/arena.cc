#include "dlog/arena.h"

#include <cstdlib>
#include <mutex>
#include <vector>

namespace nerpa::dlog::arena {

namespace {

constexpr std::size_t kGranularity = 16;  // size-class width (and alignment)
constexpr std::size_t kNumClasses = kMaxPooledBytes / kGranularity;
constexpr std::size_t kSlabBytes = 64 * 1024;

std::size_t ClassIndex(std::size_t bytes) {
  return (bytes + kGranularity - 1) / kGranularity - 1;
}

/// Slabs outlive every thread (nodes migrate across threads via the
/// containers that own them), so ownership sits in a process-wide
/// registry freed at exit.  Touched only on the slab-carve slow path.
class SlabRegistry {
 public:
  char* NewSlab() {
    char* slab = static_cast<char*>(::operator new(kSlabBytes));
    std::lock_guard<std::mutex> lock(mu_);
    slabs_.push_back(slab);
    total_bytes_ += kSlabBytes;
    return slab;
  }

  std::uint64_t total_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_bytes_;
  }

  ~SlabRegistry() {
    for (char* slab : slabs_) ::operator delete(slab);
  }

 private:
  mutable std::mutex mu_;
  std::vector<char*> slabs_;
  std::uint64_t total_bytes_ = 0;
};

SlabRegistry& Registry() {
  // Function-local static: constructed on first carve, destroyed at exit
  // after main()'s containers are gone.  (A static-storage ZSet outliving
  // the registry would be a destruction-order hazard; the codebase keeps
  // engines heap-owned, never static.)
  static SlabRegistry registry;
  return registry;
}

struct FreeNode {
  FreeNode* next;
};

/// Per-thread pool: one free list per size class plus the current slab's
/// bump cursor.  No locks anywhere on the hot path.
struct ThreadPool {
  FreeNode* free_lists[kNumClasses] = {};
  char* cursor = nullptr;
  std::size_t remaining = 0;
};

thread_local ThreadPool tls_pool;

}  // namespace

void* Allocate(std::size_t bytes) {
  std::size_t cls = ClassIndex(bytes);
  ThreadPool& pool = tls_pool;
  if (FreeNode* node = pool.free_lists[cls]) {
    pool.free_lists[cls] = node->next;
    return node;
  }
  std::size_t size = (cls + 1) * kGranularity;
  if (pool.remaining < size) {
    pool.cursor = Registry().NewSlab();
    pool.remaining = kSlabBytes;
  }
  void* block = pool.cursor;
  pool.cursor += size;
  pool.remaining -= size;
  return block;
}

void Deallocate(void* ptr, std::size_t bytes) noexcept {
  std::size_t cls = ClassIndex(bytes);
  FreeNode* node = static_cast<FreeNode*>(ptr);
  node->next = tls_pool.free_lists[cls];
  tls_pool.free_lists[cls] = node;
}

std::uint64_t TotalSlabBytes() { return Registry().total_bytes(); }

}  // namespace nerpa::dlog::arena
