# Empty dependencies file for dlog_cli.
# This may be replaced when dependencies are built.
