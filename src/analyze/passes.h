// Internal pass interface of the analyzer.  Each pass appends to the shared
// diagnostic list; the orchestrator (analyze.cc) decides which passes run
// based on which inputs are present and whether earlier stages succeeded.
#ifndef NERPA_ANALYZE_PASSES_H_
#define NERPA_ANALYZE_PASSES_H_

#include <memory>
#include <vector>

#include "analyze/analyze.h"
#include "dlog/ast.h"
#include "dlog/program.h"

namespace nerpa::analyze {

struct PassContext {
  const dlog::ProgramAst* ast = nullptr;             // parsed program
  std::shared_ptr<const dlog::Program> program;      // null if compile failed
  const Bindings* bindings = nullptr;                // null in dlog-only mode
  const p4::P4Program* p4 = nullptr;
  const ovsdb::DatabaseSchema* schema = nullptr;
  const AnalyzeOptions* options = nullptr;
  std::vector<Diagnostic>* diagnostics = nullptr;
};

/// NW1xx over the AST (no compiled program required).
void RunDlogLints(PassContext& context);

/// NW2xx; needs bindings and a compiled program (range analysis reads the
/// resolved types the compiler stamped on expressions).
void RunCrossPlaneChecks(PassContext& context);

/// NW3xx over the P4 IR.
void RunP4Checks(PassContext& context);

/// Shared helper: emit a diagnostic.
void Emit(PassContext& context, const char* code, Severity severity,
          const char* plane, std::string message, const char* unit = "",
          int line = 0, int col = 0);

}  // namespace nerpa::analyze

#endif  // NERPA_ANALYZE_PASSES_H_
