file(REMOVE_RECURSE
  "libnerpa_dlog.a"
)
