file(REMOVE_RECURSE
  "CMakeFiles/nerpa_snvs.dir/snvs.cc.o"
  "CMakeFiles/nerpa_snvs.dir/snvs.cc.o.d"
  "libnerpa_snvs.a"
  "libnerpa_snvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nerpa_snvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
