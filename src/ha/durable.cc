#include "ha/durable.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.h"
#include "common/strings.h"

namespace nerpa::ha {

namespace {

constexpr const char* kSnapshotFormat = "nerpa-ha-snapshot-v1";

std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.json";
}
std::string WalPath(const std::string& dir) { return dir + "/wal.jsonl"; }

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound("cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

}  // namespace

Json DurableStore::SnapshotJson(const ovsdb::Database& db,
                                int64_t digest_seq) {
  Json::Object tables;
  for (const auto& [table_name, table_schema] : db.schema().tables) {
    std::vector<const ovsdb::Row*> rows = db.GetRows(table_name);
    // Sort by uuid so identical databases produce identical snapshots.
    std::sort(rows.begin(), rows.end(),
              [](const ovsdb::Row* a, const ovsdb::Row* b) {
                return a->uuid < b->uuid;
              });
    Json::Array out_rows;
    for (const ovsdb::Row* row : rows) {
      Json::Object columns;
      for (const auto& [column, datum] : row->columns) {
        columns[column] = datum.ToJson();
      }
      Json::Object entry;
      entry["uuid"] = Json(row->uuid.ToString());
      entry["row"] = Json(std::move(columns));
      out_rows.push_back(Json(std::move(entry)));
    }
    tables[table_name] = Json(std::move(out_rows));
  }
  Json::Object doc;
  doc["format"] = Json(kSnapshotFormat);
  doc["schema"] = Json(db.schema().name);
  doc["digest_seq"] = Json(digest_seq);
  doc["tables"] = Json(std::move(tables));
  return Json(std::move(doc));
}

Status DurableStore::ApplySnapshot(ovsdb::Database& db, const Json& snapshot) {
  const Json* format = snapshot.Find("format");
  if (format == nullptr || !format->is_string() ||
      format->as_string() != kSnapshotFormat) {
    return ParseError("snapshot has missing/unsupported format tag");
  }
  const Json* tables = snapshot.Find("tables");
  if (tables == nullptr || !tables->is_object()) {
    return ParseError("snapshot missing 'tables' object");
  }
  // One transaction restores everything: intra-snapshot references resolve
  // because constraints are enforced at commit, and atomicity means a
  // half-applied snapshot can never be observed.
  Json::Array ops;
  for (const auto& [table_name, rows] : tables->as_object()) {
    if (!rows.is_array()) {
      return ParseError("snapshot table '" + table_name + "' is not an array");
    }
    for (const Json& entry : rows.as_array()) {
      const Json* uuid = entry.Find("uuid");
      const Json* row = entry.Find("row");
      if (uuid == nullptr || !uuid->is_string() || row == nullptr ||
          !row->is_object()) {
        return ParseError("snapshot row entry malformed in table '" +
                          table_name + "'");
      }
      Json::Object op;
      op["op"] = Json("insert");
      op["table"] = Json(table_name);
      op["uuid"] = *uuid;
      op["row"] = *row;
      ops.push_back(Json(std::move(op)));
    }
  }
  if (ops.empty()) return Status::Ok();
  Result<Json> applied = db.Transact(Json(std::move(ops)));
  if (!applied.ok()) {
    return Internal("snapshot restore failed: " +
                    applied.status().ToString());
  }
  return Status::Ok();
}

DurableStore::DurableStore(std::unique_ptr<ovsdb::Database> db,
                           WriteAheadLog wal, std::string dir)
    : db_(std::move(db)), wal_(std::move(wal)), dir_(std::move(dir)) {}

DurableStore::~DurableStore() {
  if (hook_id_ != 0 && db_ != nullptr) db_->RemoveCommitHook(hook_id_);
}

std::unique_ptr<ovsdb::Database> DurableStore::Release() && {
  if (hook_id_ != 0) {
    db_->RemoveCommitHook(hook_id_);
    hook_id_ = 0;
  }
  return std::move(db_);
}

Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    ovsdb::DatabaseSchema schema, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Internal("cannot create HA directory '" + dir +
                    "': " + ec.message());
  }
  auto db = std::make_unique<ovsdb::Database>(std::move(schema));

  bool recovered = false;
  int64_t digest_seq = 0;
  uint64_t snapshot_rows = 0;
  if (std::filesystem::exists(SnapshotPath(dir))) {
    NERPA_ASSIGN_OR_RETURN(std::string text, ReadFile(SnapshotPath(dir)));
    NERPA_ASSIGN_OR_RETURN(Json snapshot, Json::Parse(text));
    NERPA_RETURN_IF_ERROR(ApplySnapshot(*db, snapshot));
    if (const Json* seq = snapshot.Find("digest_seq");
        seq != nullptr && seq->is_integer()) {
      digest_seq = seq->as_integer();
    }
    for (const auto& [table, unused] : db->schema().tables) {
      snapshot_rows += db->RowCount(table);
    }
    recovered = true;
  }

  NERPA_ASSIGN_OR_RETURN(WriteAheadLog wal, WriteAheadLog::Open(WalPath(dir)));
  NERPA_RETURN_IF_ERROR(wal.Replay([&](const Json& record) {
    return db->Transact(record).status();
  }));
  if (wal.records_replayed() > 0) recovered = true;

  auto store = std::unique_ptr<DurableStore>(
      new DurableStore(std::move(db), std::move(wal), dir));
  store->recovered_ = recovered;
  store->recovered_digest_seq_ = digest_seq;
  store->recovered_snapshot_rows_ = snapshot_rows;
  store->recovered_wal_records_ = store->wal_.records_replayed();
  // Attach the WAL hook only now: recovery replay must not re-append the
  // records it is reading.
  store->hook_id_ = store->db_->AddCommitHook([raw = store.get()](
                                                  const Json& pinned) {
    Status appended = raw->wal_.Append(pinned);
    if (!appended.ok()) {
      LOG_ERROR << "ha: WAL append failed (transaction is NOT durable): "
                << appended.ToString();
    }
  });
  return store;
}

Status DurableStore::Checkpoint(int64_t digest_seq) {
  Json snapshot = SnapshotJson(*db_, digest_seq);
  std::string tmp = SnapshotPath(dir_) + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) return Internal("cannot write snapshot tmp '" + tmp + "'");
    out << snapshot.Dump() << "\n";
    out.flush();
    if (!out) return Internal("short write to snapshot tmp '" + tmp + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, SnapshotPath(dir_), ec);
  if (ec) {
    return Internal("cannot publish snapshot: " + ec.message());
  }
  // The snapshot now subsumes every logged transaction: compact.
  NERPA_RETURN_IF_ERROR(wal_.Reset());
  ++checkpoints_;
  snapshot_rows_ = 0;
  for (const auto& [table, unused] : db_->schema().tables) {
    snapshot_rows_ += db_->RowCount(table);
  }
  recovered_digest_seq_ = digest_seq;
  return Status::Ok();
}

DurableStore::Stats DurableStore::stats() const {
  Stats stats;
  stats.checkpoints = checkpoints_;
  stats.snapshot_rows = snapshot_rows_;
  stats.recovered_snapshot_rows = recovered_snapshot_rows_;
  stats.recovered_wal_records = recovered_wal_records_;
  stats.truncated_tail_records = wal_.truncated_tail_records();
  stats.wal_records_appended = wal_.records_appended();
  return stats;
}

Result<std::unique_ptr<ovsdb::Database>> RecoverDatabase(
    ovsdb::DatabaseSchema schema, const std::string& dir) {
  if (!std::filesystem::exists(SnapshotPath(dir)) &&
      !std::filesystem::exists(WalPath(dir))) {
    return NotFound("no HA state under '" + dir + "'");
  }
  NERPA_ASSIGN_OR_RETURN(std::unique_ptr<DurableStore> store,
                         DurableStore::Open(std::move(schema), dir));
  // Detach the store scaffolding; keep only the rebuilt database.
  return std::move(*store).Release();
}

}  // namespace nerpa::ha
