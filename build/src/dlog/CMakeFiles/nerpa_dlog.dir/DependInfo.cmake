
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dlog/ast.cc" "src/dlog/CMakeFiles/nerpa_dlog.dir/ast.cc.o" "gcc" "src/dlog/CMakeFiles/nerpa_dlog.dir/ast.cc.o.d"
  "/root/repo/src/dlog/engine.cc" "src/dlog/CMakeFiles/nerpa_dlog.dir/engine.cc.o" "gcc" "src/dlog/CMakeFiles/nerpa_dlog.dir/engine.cc.o.d"
  "/root/repo/src/dlog/eval.cc" "src/dlog/CMakeFiles/nerpa_dlog.dir/eval.cc.o" "gcc" "src/dlog/CMakeFiles/nerpa_dlog.dir/eval.cc.o.d"
  "/root/repo/src/dlog/lexer.cc" "src/dlog/CMakeFiles/nerpa_dlog.dir/lexer.cc.o" "gcc" "src/dlog/CMakeFiles/nerpa_dlog.dir/lexer.cc.o.d"
  "/root/repo/src/dlog/parser.cc" "src/dlog/CMakeFiles/nerpa_dlog.dir/parser.cc.o" "gcc" "src/dlog/CMakeFiles/nerpa_dlog.dir/parser.cc.o.d"
  "/root/repo/src/dlog/program.cc" "src/dlog/CMakeFiles/nerpa_dlog.dir/program.cc.o" "gcc" "src/dlog/CMakeFiles/nerpa_dlog.dir/program.cc.o.d"
  "/root/repo/src/dlog/type.cc" "src/dlog/CMakeFiles/nerpa_dlog.dir/type.cc.o" "gcc" "src/dlog/CMakeFiles/nerpa_dlog.dir/type.cc.o.d"
  "/root/repo/src/dlog/value.cc" "src/dlog/CMakeFiles/nerpa_dlog.dir/value.cc.o" "gcc" "src/dlog/CMakeFiles/nerpa_dlog.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nerpa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
