file(REMOVE_RECURSE
  "CMakeFiles/test_nerpa_bindings.dir/test_nerpa_bindings.cc.o"
  "CMakeFiles/test_nerpa_bindings.dir/test_nerpa_bindings.cc.o.d"
  "test_nerpa_bindings"
  "test_nerpa_bindings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nerpa_bindings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
