# Empty compiler generated dependencies file for test_snvs_property.
# This may be replaced when dependencies are built.
