// A textual frontend for P4Program — a compact P4-16-flavored surface
// syntax, so data planes are written as source files (like the paper's
// snvs.p4) rather than C++ builder calls.  ToP4Text() pretty-prints a
// program back to parseable text (round-trip tested).
//
// Grammar (loosely; `*` repetition, `?` optional):
//
//   program    := item*
//   item       := header | metadata | digest | parserblk | action | table
//               | control | deparser
//   header     := "header" NAME "{" (type NAME ";")* "}"
//   metadata   := "metadata" "{" (type NAME ";")* "}"
//   digest     := "digest" NAME "{" (fieldref ":" type ";")* "}"
//   parserblk  := "parser" "{" state* "}"
//   state      := "state" NAME "{" ("extract" "(" NAME ")" ";")?
//                 (selectstmt | "goto" NAME ";") "}"
//   selectstmt := "select" "(" fieldref ")" "{"
//                 (INT ":" NAME ";")* ("default" ":" NAME ";")? "}"
//   action     := "action" NAME "(" params? ")" "{" stmt* "}"
//   params     := type NAME ("," type NAME)*
//   stmt       := fieldref "=" rvalue ";"          (set / copy field)
//               | "output" "(" rvalue ")" ";"
//               | "multicast" "(" rvalue ")" ";"
//               | "clone" "(" rvalue ")" ";"
//               | "drop" "(" ")" ";"
//               | "digest" "(" NAME ")" ";"
//               | "push_vlan" "(" rvalue ")" ";"
//               | "pop_vlan" "(" ")" ";"
//   rvalue     := INT | NAME (action parameter) | fieldref (copy)
//   table      := "table" NAME "{"
//                 "key" "=" "{" (fieldref ":" matchkind ";")* "}"
//                 "actions" "=" "{" (NAME ";")* "}"
//                 ("default_action" "=" NAME ("(" INT ("," INT)* ")")? ";")?
//                 ("size" "=" INT ";")? "}"
//   matchkind  := "exact" | "lpm" | "ternary" | "range" | "optional"
//   control    := ("ingress" | "egress") "{" node* "}"
//   node       := "apply" "(" NAME ")" ";"
//               | "if" "(" cond ")" "{" node* "}" ("else" "{" node* "}")?
//   cond       := "valid" "(" NAME ")" | fieldref ("==" | "!=") INT
//   deparser   := "deparser" "{" ("emit" "(" NAME ")" ";")* "}"
//   type       := "bit" "<" INT ">"
//   fieldref   := NAME "." NAME      (e.g. ethernet.dstAddr, meta.vlan,
//                                     standard.ingress_port)
#ifndef NERPA_P4_TEXT_H_
#define NERPA_P4_TEXT_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "p4/ir.h"

namespace nerpa::p4 {

/// Parses and validates a program from the textual form.
Result<std::shared_ptr<const P4Program>> ParseP4Text(std::string_view source);

/// Pretty-prints a program as parseable source (inverse of ParseP4Text for
/// programs expressible in the surface syntax).
std::string ToP4Text(const P4Program& program);

}  // namespace nerpa::p4

#endif  // NERPA_P4_TEXT_H_
