file(REMOVE_RECURSE
  "CMakeFiles/nerpa_dlog.dir/ast.cc.o"
  "CMakeFiles/nerpa_dlog.dir/ast.cc.o.d"
  "CMakeFiles/nerpa_dlog.dir/engine.cc.o"
  "CMakeFiles/nerpa_dlog.dir/engine.cc.o.d"
  "CMakeFiles/nerpa_dlog.dir/eval.cc.o"
  "CMakeFiles/nerpa_dlog.dir/eval.cc.o.d"
  "CMakeFiles/nerpa_dlog.dir/lexer.cc.o"
  "CMakeFiles/nerpa_dlog.dir/lexer.cc.o.d"
  "CMakeFiles/nerpa_dlog.dir/parser.cc.o"
  "CMakeFiles/nerpa_dlog.dir/parser.cc.o.d"
  "CMakeFiles/nerpa_dlog.dir/program.cc.o"
  "CMakeFiles/nerpa_dlog.dir/program.cc.o.d"
  "CMakeFiles/nerpa_dlog.dir/type.cc.o"
  "CMakeFiles/nerpa_dlog.dir/type.cc.o.d"
  "CMakeFiles/nerpa_dlog.dir/value.cc.o"
  "CMakeFiles/nerpa_dlog.dir/value.cc.o.d"
  "libnerpa_dlog.a"
  "libnerpa_dlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nerpa_dlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
