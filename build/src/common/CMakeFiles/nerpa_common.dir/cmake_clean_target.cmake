file(REMOVE_RECURSE
  "libnerpa_common.a"
)
