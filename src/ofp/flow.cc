#include "ofp/flow.h"

#include <algorithm>

#include "common/strings.h"

namespace nerpa::ofp {

std::string OfAction::ToString() const {
  switch (kind) {
    case Kind::kOutput:
      return StrFormat("output:%llu", static_cast<unsigned long long>(value));
    case Kind::kGroup:
      return StrFormat("group:%llu", static_cast<unsigned long long>(value));
    case Kind::kSetField:
      return StrFormat("set_field:%s=%llx", field.c_str(),
                       static_cast<unsigned long long>(value));
    case Kind::kClone:
      return StrFormat("clone:%llu", static_cast<unsigned long long>(value));
    case Kind::kPushVlan:
      return StrFormat("push_vlan:%llu",
                       static_cast<unsigned long long>(value));
    case Kind::kPopVlan: return "pop_vlan";
    case Kind::kDrop: return "drop";
  }
  return "?";
}

std::string Flow::ToString() const {
  std::string out = StrFormat("table=%d priority=%d", table_id, priority);
  for (const OfMatch& m : match) {
    out += StrFormat(" %s=%llx/%llx", m.field.c_str(),
                     static_cast<unsigned long long>(m.value),
                     static_cast<unsigned long long>(m.mask));
  }
  out += " actions=";
  for (size_t i = 0; i < actions.size(); ++i) {
    if (i > 0) out += ',';
    out += actions[i].ToString();
  }
  if (!cookie.empty()) out += " cookie=" + cookie;
  return out;
}

void FlowSwitch::AddFlow(Flow flow) {
  auto& flows = tables_[flow.table_id];
  flows.push_back(std::move(flow));
  std::stable_sort(flows.begin(), flows.end(),
                   [](const Flow& a, const Flow& b) {
                     return a.priority > b.priority;
                   });
}

size_t FlowSwitch::RemoveByCookie(std::string_view cookie) {
  size_t removed = 0;
  for (auto& [table_id, flows] : tables_) {
    auto it = std::remove_if(flows.begin(), flows.end(), [&](const Flow& f) {
      return f.cookie == cookie;
    });
    removed += static_cast<size_t>(flows.end() - it);
    flows.erase(it, flows.end());
  }
  return removed;
}

void FlowSwitch::Clear() {
  tables_.clear();
  groups_.clear();
}

size_t FlowSwitch::FlowCount() const {
  size_t total = 0;
  for (const auto& [table_id, flows] : tables_) total += flows.size();
  return total;
}

std::string FlowSwitch::DumpFlows() const {
  std::string out;
  for (const auto& [table_id, flows] : tables_) {
    for (const Flow& flow : flows) {
      out += flow.ToString() + "\n";
    }
  }
  return out;
}

std::map<std::string, size_t> FlowSwitch::FlowsByCookie() const {
  std::map<std::string, size_t> out;
  for (const auto& [table_id, flows] : tables_) {
    for (const Flow& flow : flows) ++out[flow.cookie];
  }
  return out;
}

void FlowSwitch::SetGroup(uint32_t group, std::vector<uint64_t> ports) {
  if (ports.empty()) {
    groups_.erase(group);
  } else {
    groups_[group] = std::move(ports);
  }
}

const Flow* FlowSwitch::Lookup(int table_id, const FieldMap& fields) const {
  auto it = tables_.find(table_id);
  if (it == tables_.end()) return nullptr;
  for (const Flow& flow : it->second) {  // sorted by priority desc
    bool all = true;
    for (const OfMatch& m : flow.match) {
      auto field = fields.find(m.field);
      uint64_t value = field == fields.end() ? 0 : field->second;
      if (!m.Matches(value)) {
        all = false;
        break;
      }
    }
    if (all) return &flow;
  }
  return nullptr;
}

FlowSwitch::Verdict FlowSwitch::RunTables(FieldMap& fields, int first,
                                          int last) const {
  Verdict verdict;
  for (auto it = tables_.lower_bound(first);
       it != tables_.end() && it->first <= last; ++it) {
    const Flow* flow = Lookup(it->first, fields);
    if (flow == nullptr) continue;
    for (const OfAction& action : flow->actions) {
      switch (action.kind) {
        case OfAction::Kind::kOutput:
          verdict.port = action.value;
          verdict.group.reset();
          verdict.drop = false;
          break;
        case OfAction::Kind::kGroup:
          verdict.group = static_cast<uint32_t>(action.value);
          verdict.drop = false;
          break;
        case OfAction::Kind::kSetField:
          fields[action.field] = action.value;
          break;
        case OfAction::Kind::kClone:
          verdict.clones.push_back(action.value);
          break;
        case OfAction::Kind::kPushVlan:
          fields["vlan._valid"] = 1;
          fields["vlan.vid"] = action.value;
          break;
        case OfAction::Kind::kPopVlan:
          fields["vlan._valid"] = 0;
          fields["vlan.vid"] = 0;
          break;
        case OfAction::Kind::kDrop:
          verdict.drop = true;
          verdict.port.reset();
          verdict.group.reset();
          break;
      }
    }
    if (verdict.drop) break;
  }
  return verdict;
}

std::vector<OfPacketOut> FlowSwitch::Process(const FieldMap& in_fields,
                                             uint64_t in_port) const {
  FieldMap fields = in_fields;
  fields["standard.ingress_port"] = in_port;
  Verdict ingress = RunTables(fields, 0, egress_boundary_ - 1);
  std::vector<OfPacketOut> out;
  auto egress_one = [&](FieldMap copy, uint64_t port) {
    copy["standard.egress_port"] = port;
    Verdict verdict = RunTables(copy, egress_boundary_, 1 << 30);
    if (verdict.drop) return;
    out.push_back(OfPacketOut{port, std::move(copy)});
  };
  for (uint64_t port : ingress.clones) {
    out.push_back(OfPacketOut{port, in_fields});  // original fields
  }
  if (ingress.drop) return out;
  if (ingress.group) {
    auto group = groups_.find(*ingress.group);
    if (group != groups_.end()) {
      for (uint64_t port : group->second) {
        if (port == in_port) continue;  // source pruning
        egress_one(fields, port);
      }
    }
  } else if (ingress.port) {
    egress_one(fields, *ingress.port);
  }
  return out;
}

}  // namespace nerpa::ofp
